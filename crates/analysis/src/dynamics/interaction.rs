//! The UI-interaction experiment (§4.2.1, revisited as §6 future work).
//!
//! The paper compared captures with and without random UI automation and
//! found "no significant change in the number of domains contacted", which
//! justified running the main pipeline launch-only. This module reruns
//! that comparison on the simulated devices.

use super::pipeline::DynamicEnv;
use pinning_app::app::MobileApp;
use pinning_app::behavior::Interaction;
use pinning_netsim::device::RunConfig;
use std::collections::BTreeSet;

/// Result of the interaction comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractionReport {
    /// Mean distinct destinations per app, launch-only.
    pub mean_domains_none: f64,
    /// Mean distinct destinations per app with random UI taps.
    pub mean_domains_random: f64,
    /// Mean distinct destinations per app with a scripted login.
    pub mean_domains_login: f64,
    /// Apps sampled.
    pub sample_size: usize,
}

impl InteractionReport {
    /// Relative increase of random-UI over launch-only.
    pub fn random_ui_uplift(&self) -> f64 {
        if self.mean_domains_none == 0.0 {
            return 0.0;
        }
        (self.mean_domains_random - self.mean_domains_none) / self.mean_domains_none
    }

    /// The paper's criterion: is the random-UI change *significant*? We use
    /// a 10% relative-uplift threshold as the materiality bar.
    pub fn random_ui_significant(&self) -> bool {
        self.random_ui_uplift().abs() > 0.10
    }
}

fn distinct_domains(env: &DynamicEnv<'_>, app: &MobileApp, mode: Interaction) -> usize {
    let device = env.device(app.id.platform);
    let mut cfg = RunConfig::baseline();
    cfg.interaction = mode;
    cfg.run_tag = match mode {
        Interaction::None => "ix-none",
        Interaction::RandomUi => "ix-random",
        Interaction::Login => "ix-login",
    }
    .to_string();
    let capture = device.run_app(app, &cfg);
    let domains: BTreeSet<&str> = capture
        .flows
        .iter()
        .filter_map(|f| f.transcript.sni.as_deref())
        .collect();
    domains.len()
}

/// Runs the three-way comparison over `apps`.
pub fn interaction_experiment(env: &DynamicEnv<'_>, apps: &[&MobileApp]) -> InteractionReport {
    let mut totals = [0usize; 3];
    for app in apps {
        totals[0] += distinct_domains(env, app, Interaction::None);
        totals[1] += distinct_domains(env, app, Interaction::RandomUi);
        totals[2] += distinct_domains(env, app, Interaction::Login);
    }
    let n = apps.len().max(1) as f64;
    InteractionReport {
        mean_domains_none: totals[0] as f64 / n,
        mean_domains_random: totals[1] as f64 / n,
        mean_domains_login: totals[2] as f64 / n,
        sample_size: apps.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::pipeline::DynamicEnv;
    use pinning_store::config::WorldConfig;
    use pinning_store::world::World;

    #[test]
    fn random_ui_changes_little_login_adds_nothing_much() {
        let w = World::generate(WorldConfig::tiny(0x1A7));
        let env = DynamicEnv::new(
            &w.network,
            w.universe.aosp_oem.clone(),
            w.universe.ios.clone(),
            w.now,
            5,
        );
        let apps: Vec<&_> = w.apps.iter().take(30).collect();
        let report = interaction_experiment(&env, &apps);
        assert_eq!(report.sample_size, 30);
        assert!(report.mean_domains_none > 0.0);
        // (Run-to-run server flakiness means strict monotonicity does not
        // hold per sample; the aggregate effect is what matters.)
        // The paper's conclusion: not significant.
        assert!(
            !report.random_ui_significant(),
            "uplift {:.3} should be below the materiality bar",
            report.random_ui_uplift()
        );
    }
}
