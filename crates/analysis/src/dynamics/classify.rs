//! Used/failed connection classification (§4.2.2).
//!
//! The classifier may consult **only passive observables**: wire content
//! types, record lengths, plaintext alerts, TCP flags, and the negotiated
//! version. It must never read `RecordEvent::inner_type` — that field is
//! the oracle reserved for ablation benches.

use pinning_tls::alert::ENCRYPTED_ALERT_WIRE_LEN;
use pinning_tls::record::Direction;
use pinning_tls::{ConnectionTranscript, TlsVersion};

/// Classification of one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConnStatus {
    /// The client sent application data (the connection was *used*).
    Used,
    /// The connection went unused and the client aborted (TCP RST or FIN)
    /// — the paper's *failed* definition.
    Failed,
    /// Neither: e.g. a connection the server dropped, or one that simply
    /// idled out. Excluded from pinning inference.
    Inconclusive,
}

/// Classifies a connection per the paper's heuristics:
///
/// * **TLS ≤ 1.2** — any client-sent "Encrypted Application Data" record
///   proves use (handshake records are typed distinctly on the wire).
/// * **TLS 1.3** — every encrypted record is disguised as application
///   data, and the first client record is always the Finished. The
///   connection is used iff the client sent **more than two**
///   app-data-looking records, **or** exactly two where the second's
///   length differs from an encrypted alert's.
/// * **Failed** — not used, and the client tore the connection down
///   (RST or FIN).
pub fn classify_connection(t: &ConnectionTranscript) -> ConnStatus {
    let used = match t.negotiated {
        Some((TlsVersion::V1_3, _)) => {
            let client_records = t.client_encrypted_appdata();
            match client_records.len() {
                0 | 1 => false, // at most the Finished
                2 => client_records[1].payload_len != ENCRYPTED_ALERT_WIRE_LEN,
                _ => true,
            }
        }
        Some(_) => t.records().any(|r| {
            r.direction == Direction::ClientToServer
                && r.encrypted
                && r.wire_type == pinning_tls::ContentType::ApplicationData
        }),
        None => false,
    };
    if used {
        return ConnStatus::Used;
    }
    if t.client_rst() || t.client_fin() {
        ConnStatus::Failed
    } else {
        ConnStatus::Inconclusive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_tls::cipher::CipherSuite;
    use pinning_tls::record::{ContentType, RecordEvent, TcpEvent};

    fn base(version: TlsVersion) -> ConnectionTranscript {
        let cipher = if version == TlsVersion::V1_3 {
            CipherSuite::TLS_AES_128_GCM_SHA256
        } else {
            CipherSuite::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256
        };
        let mut t = ConnectionTranscript {
            sni: Some("x.com".into()),
            negotiated: Some((version, cipher)),
            ..Default::default()
        };
        t.push_tcp(TcpEvent::Established);
        t
    }

    fn enc(t: &mut ConnectionTranscript, version: TlsVersion, inner: ContentType, len: usize) {
        t.push_record(RecordEvent::encrypted(
            Direction::ClientToServer,
            version,
            inner,
            len,
        ));
    }

    #[test]
    fn tls12_data_means_used() {
        let mut t = base(TlsVersion::V1_2);
        enc(&mut t, TlsVersion::V1_2, ContentType::Handshake, 44); // Finished
        enc(&mut t, TlsVersion::V1_2, ContentType::ApplicationData, 500);
        assert_eq!(classify_connection(&t), ConnStatus::Used);
    }

    #[test]
    fn tls12_handshake_only_not_used() {
        let mut t = base(TlsVersion::V1_2);
        enc(&mut t, TlsVersion::V1_2, ContentType::Handshake, 44);
        t.push_tcp(TcpEvent::Fin {
            from: Direction::ClientToServer,
        });
        assert_eq!(classify_connection(&t), ConnStatus::Failed);
    }

    #[test]
    fn tls13_three_records_used() {
        let mut t = base(TlsVersion::V1_3);
        enc(&mut t, TlsVersion::V1_3, ContentType::Handshake, 40); // Finished (disguised)
        enc(&mut t, TlsVersion::V1_3, ContentType::ApplicationData, 700);
        enc(
            &mut t,
            TlsVersion::V1_3,
            ContentType::Alert,
            ENCRYPTED_ALERT_WIRE_LEN,
        );
        assert_eq!(classify_connection(&t), ConnStatus::Used);
    }

    #[test]
    fn tls13_finished_plus_alert_not_used() {
        let mut t = base(TlsVersion::V1_3);
        enc(&mut t, TlsVersion::V1_3, ContentType::Handshake, 40);
        enc(
            &mut t,
            TlsVersion::V1_3,
            ContentType::Alert,
            ENCRYPTED_ALERT_WIRE_LEN,
        );
        t.push_tcp(TcpEvent::Fin {
            from: Direction::ClientToServer,
        });
        assert_eq!(classify_connection(&t), ConnStatus::Failed);
    }

    #[test]
    fn tls13_finished_plus_data_used_when_length_differs() {
        let mut t = base(TlsVersion::V1_3);
        enc(&mut t, TlsVersion::V1_3, ContentType::Handshake, 40);
        enc(&mut t, TlsVersion::V1_3, ContentType::ApplicationData, 512);
        assert_eq!(classify_connection(&t), ConnStatus::Used);
    }

    #[test]
    fn tls13_heuristic_known_blind_spot() {
        // A genuine data record that happens to be exactly the alert length
        // is misclassified — the imperfection the paper accepts because the
        // *differential* comparison absorbs it.
        let mut t = base(TlsVersion::V1_3);
        enc(&mut t, TlsVersion::V1_3, ContentType::Handshake, 40);
        enc(
            &mut t,
            TlsVersion::V1_3,
            ContentType::ApplicationData,
            ENCRYPTED_ALERT_WIRE_LEN,
        );
        assert_eq!(classify_connection(&t), ConnStatus::Inconclusive);
    }

    #[test]
    fn rst_without_use_is_failed() {
        let mut t = base(TlsVersion::V1_3);
        enc(&mut t, TlsVersion::V1_3, ContentType::Handshake, 40);
        t.push_tcp(TcpEvent::Rst {
            from: Direction::ClientToServer,
        });
        assert_eq!(classify_connection(&t), ConnStatus::Failed);
    }

    #[test]
    fn server_drop_is_inconclusive() {
        let mut t = base(TlsVersion::V1_2);
        t.push_tcp(TcpEvent::Rst {
            from: Direction::ServerToClient,
        });
        assert_eq!(classify_connection(&t), ConnStatus::Inconclusive);
    }

    #[test]
    fn no_negotiation_is_not_used() {
        let mut t = ConnectionTranscript {
            sni: Some("x.com".into()),
            ..Default::default()
        };
        t.push_tcp(TcpEvent::Established);
        t.push_tcp(TcpEvent::Fin {
            from: Direction::ServerToClient,
        });
        assert_eq!(classify_connection(&t), ConnStatus::Inconclusive);
    }
}
