//! Connection security (§5.4, Table 8): weak-cipher advertisement in
//! pinned vs all connections.

use crate::dynamics::pipeline::AppDynamicResult;
use pinning_netsim::flow::Capture;
use std::collections::BTreeSet;

/// Whether any flow in `capture` advertised a weak cipher suite.
pub fn any_weak_offer(capture: &Capture) -> bool {
    capture
        .flows
        .iter()
        .any(|f| f.transcript.offered_ciphers.iter().any(|c| c.is_weak()))
}

/// Whether any flow *to a pinned destination* advertised a weak suite.
pub fn any_weak_pinned_offer(result: &AppDynamicResult) -> bool {
    let pinned: BTreeSet<&str> = result.pinned_destinations().into_iter().collect();
    result
        .baseline
        .flows
        .iter()
        .filter(|f| {
            f.transcript
                .sni
                .as_deref()
                .is_some_and(|s| pinned.contains(s))
        })
        .any(|f| f.transcript.offered_ciphers.iter().any(|c| c.is_weak()))
}

/// One Table 8 row: a (dataset, platform) cell pair.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WeakCipherRow {
    /// Apps with ≥1 weak-advertising connection / total apps.
    pub overall_pct: f64,
    /// Pinning apps with ≥1 weak-advertising *pinned* connection / pinning
    /// apps.
    pub pinning_pct: f64,
    /// Denominators, for auditability.
    pub total_apps: usize,
    /// Number of pinning apps.
    pub pinning_apps: usize,
}

/// Computes a Table 8 row over one dataset's results.
pub fn weak_cipher_row(results: &[&AppDynamicResult]) -> WeakCipherRow {
    let total_apps = results.len();
    let overall = results
        .iter()
        .filter(|r| any_weak_offer(&r.baseline))
        .count();
    let pinners: Vec<_> = results.iter().filter(|r| r.pins()).collect();
    let pinning_weak = pinners.iter().filter(|r| any_weak_pinned_offer(r)).count();
    let pct = |n: usize, d: usize| {
        if d == 0 {
            0.0
        } else {
            100.0 * n as f64 / d as f64
        }
    };
    WeakCipherRow {
        overall_pct: pct(overall, total_apps),
        pinning_pct: pct(pinning_weak, pinners.len()),
        total_apps,
        pinning_apps: pinners.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::pipeline::{analyze_app, DynamicEnv};
    use pinning_app::platform::Platform;
    use pinning_store::config::WorldConfig;
    use pinning_store::world::World;

    #[test]
    fn ios_overall_weak_far_exceeds_android() {
        let w = World::generate(WorldConfig::tiny(0x8a));
        let env = DynamicEnv::new(
            &w.network,
            w.universe.aosp_oem.clone(),
            w.universe.ios.clone(),
            w.now,
            2,
        );
        let mut android = Vec::new();
        let mut ios = Vec::new();
        for app in &w.apps {
            let r = analyze_app(&env, app);
            match app.id.platform {
                Platform::Android => android.push(r),
                Platform::Ios => ios.push(r),
            }
        }
        let a_refs: Vec<&_> = android.iter().collect();
        let i_refs: Vec<&_> = ios.iter().collect();
        let a_row = weak_cipher_row(&a_refs);
        let i_row = weak_cipher_row(&i_refs);
        // Table 8 shape: iOS overall ≈ 80–95%, Android ≈ 3–20%.
        assert!(
            i_row.overall_pct > 60.0,
            "iOS overall {}",
            i_row.overall_pct
        );
        assert!(
            a_row.overall_pct < 40.0,
            "Android overall {}",
            a_row.overall_pct
        );
        assert!(i_row.overall_pct > a_row.overall_pct + 30.0);
    }

    #[test]
    fn empty_dataset_row_is_zero() {
        let row = weak_cipher_row(&[]);
        assert_eq!(row.overall_pct, 0.0);
        assert_eq!(row.total_apps, 0);
    }
}
