//! PII detection in decrypted traffic and the Table 9 significance test
//! (§4.4, §5.5).

use pinning_app::pii::{DeviceIdentity, PiiType};
use pinning_crypto::Sha256;
use pinning_pki::cache::{self, CacheCounter};
use std::collections::{BTreeMap, HashMap};
use std::sync::{OnceLock, RwLock};

/// Detects which PII types appear in a request body, by matching the test
/// device's known identifier values (the paper controls the device, so
/// value matching is exact).
pub fn detect_pii(identity: &DeviceIdentity, body: &str) -> Vec<PiiType> {
    PiiType::ALL
        .into_iter()
        .filter(|p| body.contains(identity.value_of(*p)))
        .collect()
}

/// Hit/miss telemetry for the memoized PII scan.
pub static PII_SCAN: CacheCounter = CacheCounter::new("pii-scan");

fn pii_memo() -> &'static RwLock<HashMap<[u8; 32], u8>> {
    static MEMO: OnceLock<RwLock<HashMap<[u8; 32], u8>>> = OnceLock::new();
    MEMO.get_or_init(|| RwLock::new(HashMap::new()))
}

fn pii_key(identity: &DeviceIdentity, body: &str) -> [u8; 32] {
    let mut h = Sha256::new();
    // The identity's values participate in the key so two devices with
    // different identifiers never share a memo slot.
    for p in PiiType::ALL {
        let v = identity.value_of(p);
        h.update(&(v.len() as u64).to_le_bytes());
        h.update(v.as_bytes());
    }
    h.update(body.as_bytes());
    h.finalize()
}

fn mask_of(found: &[PiiType]) -> u8 {
    let mut mask = 0u8;
    for (bit, p) in PiiType::ALL.iter().enumerate() {
        if found.contains(p) {
            mask |= 1 << bit;
        }
    }
    mask
}

fn unmask(mask: u8) -> Vec<PiiType> {
    PiiType::ALL
        .into_iter()
        .enumerate()
        .filter(|(bit, _)| mask & (1 << bit) != 0)
        .map(|(_, p)| p)
        .collect()
}

/// Memoized [`detect_pii`]: keyed by the device identity's identifier
/// values and the body, so repeated scans of the same flow (Table 9 is
/// folded twice per render, and many more times in benches) hit a bitmask
/// lookup instead of re-running seven substring searches. Respects the
/// global cache kill switch; output is byte-identical because the mask
/// decodes in `PiiType::ALL` order, exactly as the filter produces it.
pub fn detect_pii_cached(identity: &DeviceIdentity, body: &str) -> Vec<PiiType> {
    if !cache::caching_enabled() {
        return detect_pii(identity, body);
    }
    let key = pii_key(identity, body);
    if let Some(mask) = pii_memo().read().expect("memo lock").get(&key) {
        PII_SCAN.hit();
        return unmask(*mask);
    }
    PII_SCAN.miss();
    let found = detect_pii(identity, body);
    pii_memo()
        .write()
        .expect("memo lock")
        .insert(key, mask_of(&found));
    found
}

/// Drops every memoized PII scan (tests and cache-ablation benches).
pub fn clear_pii_scan_cache() {
    pii_memo().write().expect("memo lock").clear();
}

/// A 2×2 contingency table: PII presence × pinned/non-pinned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Contingency {
    /// Pinned flows carrying the PII.
    pub pinned_with: u64,
    /// Pinned flows without it.
    pub pinned_without: u64,
    /// Non-pinned flows carrying the PII.
    pub unpinned_with: u64,
    /// Non-pinned flows without it.
    pub unpinned_without: u64,
}

impl Contingency {
    /// Prevalence among pinned flows, percent.
    pub fn pinned_pct(&self) -> f64 {
        pct(self.pinned_with, self.pinned_with + self.pinned_without)
    }

    /// Prevalence among non-pinned flows, percent.
    pub fn unpinned_pct(&self) -> f64 {
        pct(
            self.unpinned_with,
            self.unpinned_with + self.unpinned_without,
        )
    }

    /// Pearson chi-square statistic for independence (1 d.f.).
    pub fn chi_square(&self) -> f64 {
        let a = self.pinned_with as f64;
        let b = self.pinned_without as f64;
        let c = self.unpinned_with as f64;
        let d = self.unpinned_without as f64;
        let n = a + b + c + d;
        if n == 0.0 {
            return 0.0;
        }
        let denom = (a + b) * (c + d) * (a + c) * (b + d);
        if denom == 0.0 {
            return 0.0;
        }
        n * (a * d - b * c).powi(2) / denom
    }

    /// Whether the association is significant at p < 0.05 (χ² > 3.841 with
    /// one degree of freedom — the paper's test).
    pub fn significant(&self) -> bool {
        self.chi_square() > 3.841
    }
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Table 9's per-PII summary for one platform.
#[derive(Debug, Clone, Default)]
pub struct PiiComparison {
    /// Per-PII contingency tables.
    pub tables: BTreeMap<PiiType, Contingency>,
    /// Total pinned request bodies inspected.
    pub pinned_bodies: u64,
    /// Total non-pinned request bodies inspected.
    pub unpinned_bodies: u64,
}

impl PiiComparison {
    /// Folds one decrypted body into the comparison.
    pub fn add_body(&mut self, identity: &DeviceIdentity, body: &str, pinned: bool) {
        let found = detect_pii_cached(identity, body);
        self.add_detected(&found, pinned);
    }

    /// Folds an already-scanned body into the comparison. The streaming
    /// engine scans with plain [`detect_pii`] and calls this directly:
    /// every streamed body is seen exactly once, so memoizing them would
    /// only grow the process-global cache without ever hitting.
    pub fn add_detected(&mut self, found: &[PiiType], pinned: bool) {
        if pinned {
            self.pinned_bodies += 1;
        } else {
            self.unpinned_bodies += 1;
        }
        for p in PiiType::ALL {
            let t = self.tables.entry(p).or_default();
            let has = found.contains(&p);
            match (pinned, has) {
                (true, true) => t.pinned_with += 1,
                (true, false) => t.pinned_without += 1,
                (false, true) => t.unpinned_with += 1,
                (false, false) => t.unpinned_without += 1,
            }
        }
    }

    /// Folds another comparison into this one. Entrywise sums, so the
    /// operation is associative and commutative — the streaming engine's
    /// sharded accumulators rely on both laws.
    pub fn merge(&mut self, other: &PiiComparison) {
        self.pinned_bodies += other.pinned_bodies;
        self.unpinned_bodies += other.unpinned_bodies;
        for (p, o) in &other.tables {
            let t = self.tables.entry(*p).or_default();
            t.pinned_with += o.pinned_with;
            t.pinned_without += o.pinned_without;
            t.unpinned_with += o.unpinned_with;
            t.unpinned_without += o.unpinned_without;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_crypto::SplitMix64;

    fn identity() -> DeviceIdentity {
        DeviceIdentity::generate(&mut SplitMix64::new(0x1d))
    }

    #[test]
    fn detects_planted_pii() {
        let id = identity();
        let body = id.render_payload(&[PiiType::AdvertisingId, PiiType::Email], 1);
        let found = detect_pii(&id, &body);
        assert!(found.contains(&PiiType::AdvertisingId));
        assert!(found.contains(&PiiType::Email));
        assert!(!found.contains(&PiiType::Imei));
    }

    #[test]
    fn no_false_positives_on_clean_body() {
        let id = identity();
        assert!(detect_pii(&id, "event=launch&ts=1").is_empty());
    }

    #[test]
    fn chi_square_known_value() {
        // Classic example: ((20,30),(40,10)) → χ² ≈ 16.67.
        let t = Contingency {
            pinned_with: 20,
            pinned_without: 30,
            unpinned_with: 40,
            unpinned_without: 10,
        };
        assert!(
            (t.chi_square() - 16.6667).abs() < 0.01,
            "{}",
            t.chi_square()
        );
        assert!(t.significant());
    }

    #[test]
    fn chi_square_independent_data_not_significant() {
        let t = Contingency {
            pinned_with: 25,
            pinned_without: 75,
            unpinned_with: 250,
            unpinned_without: 750,
        };
        assert!(t.chi_square() < 0.01);
        assert!(!t.significant());
    }

    #[test]
    fn chi_square_degenerate_cases() {
        assert_eq!(Contingency::default().chi_square(), 0.0);
        let t = Contingency {
            pinned_with: 5,
            pinned_without: 5,
            ..Default::default()
        };
        assert_eq!(t.chi_square(), 0.0); // empty unpinned margin
    }

    #[test]
    fn comparison_accumulates() {
        let id = identity();
        let mut cmp = PiiComparison::default();
        let with_adid = id.render_payload(&[PiiType::AdvertisingId], 1);
        let without = id.render_payload(&[], 2);
        cmp.add_body(&id, &with_adid, true);
        cmp.add_body(&id, &without, true);
        cmp.add_body(&id, &with_adid, false);
        cmp.add_body(&id, &without, false);
        cmp.add_body(&id, &without, false);
        let t = cmp.tables[&PiiType::AdvertisingId];
        assert_eq!(t.pinned_with, 1);
        assert_eq!(t.pinned_without, 1);
        assert_eq!(t.unpinned_with, 1);
        assert_eq!(t.unpinned_without, 2);
        assert_eq!(cmp.pinned_bodies, 2);
        assert_eq!(cmp.unpinned_bodies, 3);
        assert!((t.pinned_pct() - 50.0).abs() < 1e-9);
        assert!((t.unpinned_pct() - 33.333).abs() < 0.01);
    }

    #[test]
    fn cached_scan_matches_uncached_and_counts_hits() {
        let id = identity();
        let body = id.render_payload(&[PiiType::Email, PiiType::LatLon], 7);
        let base = PII_SCAN.snapshot();
        let first = detect_pii_cached(&id, &body);
        let second = detect_pii_cached(&id, &body);
        assert_eq!(first, detect_pii(&id, &body));
        assert_eq!(first, second);
        let stat = PII_SCAN.snapshot().delta_since(&base);
        assert!(stat.hits >= 1, "second scan should hit: {stat:?}");

        // A different identity must not share the memo slot.
        let other = DeviceIdentity::generate(&mut SplitMix64::new(0x2e));
        assert_eq!(detect_pii_cached(&other, &body), detect_pii(&other, &body));
    }

    #[test]
    fn cache_kill_switch_bypasses_memo() {
        let id = identity();
        let body = id.render_payload(&[PiiType::Imei], 3);
        let _off = cache::caching_disabled_scope();
        let base = PII_SCAN.snapshot();
        let found = detect_pii_cached(&id, &body);
        assert_eq!(found, detect_pii(&id, &body));
        let stat = PII_SCAN.snapshot().delta_since(&base);
        assert_eq!(stat.hits + stat.misses, 0, "kill switch must skip counters");
    }

    #[test]
    fn merge_matches_sequential_fold() {
        let id = identity();
        let bodies: Vec<(String, bool)> = (0..12)
            .map(|i| {
                let kinds: &[PiiType] = match i % 3 {
                    0 => &[PiiType::AdvertisingId],
                    1 => &[PiiType::Email, PiiType::City],
                    _ => &[],
                };
                (id.render_payload(kinds, i), i % 2 == 0)
            })
            .collect();

        let mut whole = PiiComparison::default();
        for (b, pinned) in &bodies {
            whole.add_body(&id, b, *pinned);
        }

        let (left, right) = bodies.split_at(5);
        let mut a = PiiComparison::default();
        for (b, pinned) in left {
            a.add_body(&id, b, *pinned);
        }
        let mut b2 = PiiComparison::default();
        for (b, pinned) in right {
            b2.add_body(&id, b, *pinned);
        }

        // Commutative: fold in either order, same tables.
        let mut ab = a.clone();
        ab.merge(&b2);
        let mut ba = b2.clone();
        ba.merge(&a);
        assert_eq!(ab.tables, whole.tables);
        assert_eq!(ba.tables, whole.tables);
        assert_eq!(ab.pinned_bodies, whole.pinned_bodies);
        assert_eq!(ba.unpinned_bodies, whole.unpinned_bodies);
    }
}
