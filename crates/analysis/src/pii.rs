//! PII detection in decrypted traffic and the Table 9 significance test
//! (§4.4, §5.5).

use pinning_app::pii::{DeviceIdentity, PiiType};
use std::collections::BTreeMap;

/// Detects which PII types appear in a request body, by matching the test
/// device's known identifier values (the paper controls the device, so
/// value matching is exact).
pub fn detect_pii(identity: &DeviceIdentity, body: &str) -> Vec<PiiType> {
    PiiType::ALL
        .into_iter()
        .filter(|p| body.contains(identity.value_of(*p)))
        .collect()
}

/// A 2×2 contingency table: PII presence × pinned/non-pinned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Contingency {
    /// Pinned flows carrying the PII.
    pub pinned_with: u64,
    /// Pinned flows without it.
    pub pinned_without: u64,
    /// Non-pinned flows carrying the PII.
    pub unpinned_with: u64,
    /// Non-pinned flows without it.
    pub unpinned_without: u64,
}

impl Contingency {
    /// Prevalence among pinned flows, percent.
    pub fn pinned_pct(&self) -> f64 {
        pct(self.pinned_with, self.pinned_with + self.pinned_without)
    }

    /// Prevalence among non-pinned flows, percent.
    pub fn unpinned_pct(&self) -> f64 {
        pct(
            self.unpinned_with,
            self.unpinned_with + self.unpinned_without,
        )
    }

    /// Pearson chi-square statistic for independence (1 d.f.).
    pub fn chi_square(&self) -> f64 {
        let a = self.pinned_with as f64;
        let b = self.pinned_without as f64;
        let c = self.unpinned_with as f64;
        let d = self.unpinned_without as f64;
        let n = a + b + c + d;
        if n == 0.0 {
            return 0.0;
        }
        let denom = (a + b) * (c + d) * (a + c) * (b + d);
        if denom == 0.0 {
            return 0.0;
        }
        n * (a * d - b * c).powi(2) / denom
    }

    /// Whether the association is significant at p < 0.05 (χ² > 3.841 with
    /// one degree of freedom — the paper's test).
    pub fn significant(&self) -> bool {
        self.chi_square() > 3.841
    }
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Table 9's per-PII summary for one platform.
#[derive(Debug, Clone, Default)]
pub struct PiiComparison {
    /// Per-PII contingency tables.
    pub tables: BTreeMap<PiiType, Contingency>,
    /// Total pinned request bodies inspected.
    pub pinned_bodies: u64,
    /// Total non-pinned request bodies inspected.
    pub unpinned_bodies: u64,
}

impl PiiComparison {
    /// Folds one decrypted body into the comparison.
    pub fn add_body(&mut self, identity: &DeviceIdentity, body: &str, pinned: bool) {
        let found = detect_pii(identity, body);
        if pinned {
            self.pinned_bodies += 1;
        } else {
            self.unpinned_bodies += 1;
        }
        for p in PiiType::ALL {
            let t = self.tables.entry(p).or_default();
            let has = found.contains(&p);
            match (pinned, has) {
                (true, true) => t.pinned_with += 1,
                (true, false) => t.pinned_without += 1,
                (false, true) => t.unpinned_with += 1,
                (false, false) => t.unpinned_without += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_crypto::SplitMix64;

    fn identity() -> DeviceIdentity {
        DeviceIdentity::generate(&mut SplitMix64::new(0x1d))
    }

    #[test]
    fn detects_planted_pii() {
        let id = identity();
        let body = id.render_payload(&[PiiType::AdvertisingId, PiiType::Email], 1);
        let found = detect_pii(&id, &body);
        assert!(found.contains(&PiiType::AdvertisingId));
        assert!(found.contains(&PiiType::Email));
        assert!(!found.contains(&PiiType::Imei));
    }

    #[test]
    fn no_false_positives_on_clean_body() {
        let id = identity();
        assert!(detect_pii(&id, "event=launch&ts=1").is_empty());
    }

    #[test]
    fn chi_square_known_value() {
        // Classic example: ((20,30),(40,10)) → χ² ≈ 16.67.
        let t = Contingency {
            pinned_with: 20,
            pinned_without: 30,
            unpinned_with: 40,
            unpinned_without: 10,
        };
        assert!(
            (t.chi_square() - 16.6667).abs() < 0.01,
            "{}",
            t.chi_square()
        );
        assert!(t.significant());
    }

    #[test]
    fn chi_square_independent_data_not_significant() {
        let t = Contingency {
            pinned_with: 25,
            pinned_without: 75,
            unpinned_with: 250,
            unpinned_without: 750,
        };
        assert!(t.chi_square() < 0.01);
        assert!(!t.significant());
    }

    #[test]
    fn chi_square_degenerate_cases() {
        assert_eq!(Contingency::default().chi_square(), 0.0);
        let t = Contingency {
            pinned_with: 5,
            pinned_without: 5,
            ..Default::default()
        };
        assert_eq!(t.chi_square(), 0.0); // empty unpinned margin
    }

    #[test]
    fn comparison_accumulates() {
        let id = identity();
        let mut cmp = PiiComparison::default();
        let with_adid = id.render_payload(&[PiiType::AdvertisingId], 1);
        let without = id.render_payload(&[], 2);
        cmp.add_body(&id, &with_adid, true);
        cmp.add_body(&id, &without, true);
        cmp.add_body(&id, &with_adid, false);
        cmp.add_body(&id, &without, false);
        cmp.add_body(&id, &without, false);
        let t = cmp.tables[&PiiType::AdvertisingId];
        assert_eq!(t.pinned_with, 1);
        assert_eq!(t.pinned_without, 1);
        assert_eq!(t.unpinned_with, 1);
        assert_eq!(t.unpinned_without, 2);
        assert_eq!(cmp.pinned_bodies, 2);
        assert_eq!(cmp.unpinned_bodies, 3);
        assert!((t.pinned_pct() - 50.0).abs() < 1e-9);
        assert!((t.unpinned_pct() - 33.333).abs() < 0.01);
    }
}
