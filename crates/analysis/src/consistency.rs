//! Cross-platform pinning consistency (§5.1, Figures 2–4).
//!
//! Definitions, verbatim from the paper:
//!
//! * an app has **inconsistent** pinning if a domain pinned on one platform
//!   appears *unpinned* on the other;
//! * an app has **consistent** pinning if it pins at least one common
//!   domain on both platforms and has no inconsistent pinning;
//! * otherwise the comparison is **inconclusive** (domains pinned on one
//!   platform were never observed on the other).

use std::collections::BTreeSet;

/// One platform's observation for a common app.
#[derive(Debug, Clone, Default)]
pub struct PlatformObservation {
    /// Destinations detected as pinned.
    pub pinned: BTreeSet<String>,
    /// All destinations observed (pinned or not).
    pub observed: BTreeSet<String>,
}

impl PlatformObservation {
    /// Builds from iterators.
    pub fn new(
        pinned: impl IntoIterator<Item = String>,
        observed: impl IntoIterator<Item = String>,
    ) -> Self {
        let pinned: BTreeSet<String> = pinned.into_iter().collect();
        let mut observed: BTreeSet<String> = observed.into_iter().collect();
        observed.extend(pinned.iter().cloned());
        PlatformObservation { pinned, observed }
    }

    /// Destinations observed but not pinned.
    pub fn unpinned(&self) -> BTreeSet<&str> {
        self.observed
            .iter()
            .filter(|d| !self.pinned.contains(*d))
            .map(String::as_str)
            .collect()
    }
}

/// Figure 2's buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConsistencyClass {
    /// ≥1 common pinned domain, no contradictions.
    Consistent,
    /// Some domain pinned on one platform is unpinned on the other.
    Inconsistent,
    /// No overlap to judge by.
    Inconclusive,
}

/// Full comparison output for one common app.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsistencyReport {
    /// The classification.
    pub class: ConsistencyClass,
    /// Jaccard index of the two pinned sets.
    pub jaccard_pinned: f64,
    /// Domains pinned on both platforms.
    pub common_pinned: usize,
    /// % of Android-pinned domains appearing **unpinned** on iOS
    /// (Figure 3, middle column / Figure 4a cells).
    pub android_pinned_unpinned_on_ios: f64,
    /// % of iOS-pinned domains appearing unpinned on Android.
    pub ios_pinned_unpinned_on_android: f64,
    /// Whether the pinned sets are exactly equal (the "13 apps" of §5.1).
    pub identical_pinned_sets: bool,
}

/// Jaccard index of two sets (1.0 when both empty, matching the
/// same-set intuition).
pub fn jaccard(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    inter / union
}

/// Compares the two platforms' observations for one app.
pub fn compare(android: &PlatformObservation, ios: &PlatformObservation) -> ConsistencyReport {
    let android_unpinned = android.unpinned();
    let ios_unpinned = ios.unpinned();

    let a_contradicted: Vec<&String> = android
        .pinned
        .iter()
        .filter(|d| ios_unpinned.contains(d.as_str()))
        .collect();
    let i_contradicted: Vec<&String> = ios
        .pinned
        .iter()
        .filter(|d| android_unpinned.contains(d.as_str()))
        .collect();

    let common_pinned = android.pinned.intersection(&ios.pinned).count();

    let class = if !a_contradicted.is_empty() || !i_contradicted.is_empty() {
        ConsistencyClass::Inconsistent
    } else if common_pinned > 0 {
        ConsistencyClass::Consistent
    } else {
        ConsistencyClass::Inconclusive
    };

    let pct = |n: usize, d: usize| {
        if d == 0 {
            0.0
        } else {
            100.0 * n as f64 / d as f64
        }
    };
    ConsistencyReport {
        class,
        jaccard_pinned: jaccard(&android.pinned, &ios.pinned),
        common_pinned,
        android_pinned_unpinned_on_ios: pct(a_contradicted.len(), android.pinned.len()),
        ios_pinned_unpinned_on_android: pct(i_contradicted.len(), ios.pinned.len()),
        identical_pinned_sets: android.pinned == ios.pinned && !android.pinned.is_empty(),
    }
}

/// Figure-2-style aggregate over a common dataset.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommonDatasetSummary {
    /// Apps pinning on both platforms.
    pub pin_both: usize,
    /// Of those: consistent / inconsistent / inconclusive.
    pub both_consistent: usize,
    /// Inconsistent both-pinners.
    pub both_inconsistent: usize,
    /// Inconclusive both-pinners.
    pub both_inconclusive: usize,
    /// Identical pinned sets (subset of consistent).
    pub both_identical: usize,
    /// Apps pinning only on Android: (inconsistent, inconclusive).
    pub android_only: (usize, usize),
    /// Apps pinning only on iOS: (inconsistent, inconclusive).
    pub ios_only: (usize, usize),
}

impl CommonDatasetSummary {
    /// Total pinning apps in the common dataset.
    pub fn total_pinners(&self) -> usize {
        self.pin_both
            + self.android_only.0
            + self.android_only.1
            + self.ios_only.0
            + self.ios_only.1
    }
}

/// Aggregates per-app comparisons into the Figure 2/4 summary.
pub fn summarize_common(
    observations: &[(PlatformObservation, PlatformObservation)],
) -> CommonDatasetSummary {
    let mut s = CommonDatasetSummary::default();
    for (android, ios) in observations {
        let a_pins = !android.pinned.is_empty();
        let i_pins = !ios.pinned.is_empty();
        match (a_pins, i_pins) {
            (true, true) => {
                s.pin_both += 1;
                let rep = compare(android, ios);
                match rep.class {
                    ConsistencyClass::Consistent => {
                        s.both_consistent += 1;
                        if rep.identical_pinned_sets {
                            s.both_identical += 1;
                        }
                    }
                    ConsistencyClass::Inconsistent => s.both_inconsistent += 1,
                    ConsistencyClass::Inconclusive => s.both_inconclusive += 1,
                }
            }
            (true, false) => {
                let rep = compare(android, ios);
                if rep.android_pinned_unpinned_on_ios > 0.0 {
                    s.android_only.0 += 1;
                } else {
                    s.android_only.1 += 1;
                }
            }
            (false, true) => {
                let rep = compare(android, ios);
                if rep.ios_pinned_unpinned_on_android > 0.0 {
                    s.ios_only.0 += 1;
                } else {
                    s.ios_only.1 += 1;
                }
            }
            (false, false) => {}
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(pinned: &[&str], observed: &[&str]) -> PlatformObservation {
        PlatformObservation::new(
            pinned.iter().map(|s| s.to_string()),
            observed.iter().map(|s| s.to_string()),
        )
    }

    #[test]
    fn identical_sets_consistent() {
        let a = obs(&["x.com"], &["x.com", "y.com"]);
        let i = obs(&["x.com"], &["x.com", "z.com"]);
        let rep = compare(&a, &i);
        assert_eq!(rep.class, ConsistencyClass::Consistent);
        assert!(rep.identical_pinned_sets);
        assert!((rep.jaccard_pinned - 1.0).abs() < 1e-9);
    }

    #[test]
    fn consistent_with_unobserved_extras() {
        // Android pins an extra domain iOS never contacts — still
        // consistent per the paper's definition.
        let a = obs(&["x.com", "extra.com"], &["x.com", "extra.com"]);
        let i = obs(&["x.com"], &["x.com"]);
        let rep = compare(&a, &i);
        assert_eq!(rep.class, ConsistencyClass::Consistent);
        assert!(!rep.identical_pinned_sets);
        assert!(rep.jaccard_pinned < 1.0);
    }

    #[test]
    fn contradiction_is_inconsistent() {
        // iOS contacts x.com unpinned while Android pins it.
        let a = obs(&["x.com"], &["x.com"]);
        let i = obs(&["y.com"], &["x.com", "y.com"]);
        let rep = compare(&a, &i);
        assert_eq!(rep.class, ConsistencyClass::Inconsistent);
        assert!((rep.android_pinned_unpinned_on_ios - 100.0).abs() < 1e-9);
        assert_eq!(rep.ios_pinned_unpinned_on_android, 0.0);
    }

    #[test]
    fn disjoint_unobserved_is_inconclusive() {
        let a = obs(&["a.com"], &["a.com"]);
        let i = obs(&["b.com"], &["b.com"]);
        let rep = compare(&a, &i);
        assert_eq!(rep.class, ConsistencyClass::Inconclusive);
        assert_eq!(rep.jaccard_pinned, 0.0);
    }

    #[test]
    fn jaccard_edges() {
        let empty = BTreeSet::new();
        assert_eq!(jaccard(&empty, &empty), 1.0);
        let x: BTreeSet<String> = ["a".to_string()].into();
        assert_eq!(jaccard(&x, &empty), 0.0);
    }

    #[test]
    fn summary_buckets() {
        let rows = vec![
            // both, identical
            (obs(&["x.com"], &["x.com"]), obs(&["x.com"], &["x.com"])),
            // both, inconsistent
            (
                obs(&["x.com", "y.com"], &["x.com", "y.com"]),
                obs(&["x.com"], &["x.com", "y.com"]),
            ),
            // both, inconclusive (disjoint)
            (obs(&["a.com"], &["a.com"]), obs(&["b.com"], &["b.com"])),
            // android-only, inconsistent (domain shows unpinned on iOS)
            (obs(&["p.com"], &["p.com"]), obs(&[], &["p.com"])),
            // ios-only, inconclusive
            (obs(&[], &["q.com"]), obs(&["r.com"], &["r.com"])),
            // neither pins
            (obs(&[], &["n.com"]), obs(&[], &["n.com"])),
        ];
        let s = summarize_common(&rows);
        assert_eq!(s.pin_both, 3);
        assert_eq!(s.both_consistent, 1);
        assert_eq!(s.both_identical, 1);
        assert_eq!(s.both_inconsistent, 1);
        assert_eq!(s.both_inconclusive, 1);
        assert_eq!(s.android_only, (1, 0));
        assert_eq!(s.ios_only, (0, 1));
        assert_eq!(s.total_pinners(), 5);
    }
}
