//! Property tests for the netsim substrate: simcap roundtrips over
//! arbitrary captures, and proxy-forging invariants.

use pinning_netsim::flow::{Capture, FlowOrigin, FlowRecord};
use pinning_netsim::simcap;
use pinning_tls::alert::{AlertDescription, AlertLevel};
use pinning_tls::cipher::CipherSuite;
use pinning_tls::record::{ContentType, Direction, RecordEvent, TcpEvent};
use pinning_tls::{ConnectionTranscript, TlsVersion};
use proptest::prelude::*;

fn arb_direction() -> impl Strategy<Value = Direction> {
    prop_oneof![Just(Direction::ClientToServer), Just(Direction::ServerToClient)]
}

fn arb_content() -> impl Strategy<Value = ContentType> {
    prop_oneof![
        Just(ContentType::Handshake),
        Just(ContentType::Alert),
        Just(ContentType::ApplicationData),
        Just(ContentType::ChangeCipherSpec),
    ]
}

fn arb_version() -> impl Strategy<Value = TlsVersion> {
    prop_oneof![
        Just(TlsVersion::V1_0),
        Just(TlsVersion::V1_1),
        Just(TlsVersion::V1_2),
        Just(TlsVersion::V1_3),
    ]
}

fn arb_cipher() -> impl Strategy<Value = CipherSuite> {
    prop::sample::select(CipherSuite::legacy_client_list())
}

fn arb_alert_desc() -> impl Strategy<Value = AlertDescription> {
    prop_oneof![
        Just(AlertDescription::CloseNotify),
        Just(AlertDescription::HandshakeFailure),
        Just(AlertDescription::BadCertificate),
        Just(AlertDescription::CertificateUnknown),
        Just(AlertDescription::UnknownCa),
        Just(AlertDescription::ProtocolVersion),
        Just(AlertDescription::UnrecognizedName),
    ]
}

prop_compose! {
    fn arb_record()(
        direction in arb_direction(),
        version in arb_version(),
        inner in arb_content(),
        encrypted in any::<bool>(),
        len in 0usize..4096,
        alert in proptest::option::of((any::<bool>(), arb_alert_desc())),
    ) -> RecordEvent {
        if encrypted {
            RecordEvent::encrypted(direction, version, inner, len)
        } else if let Some((fatal, desc)) = alert {
            RecordEvent::plaintext_alert(
                direction,
                if fatal { AlertLevel::Fatal } else { AlertLevel::Warning },
                desc,
            )
        } else {
            RecordEvent::handshake(direction, len)
        }
    }
}

prop_compose! {
    fn arb_transcript()(
        sni in proptest::option::of("[a-z]{1,12}\\.[a-z]{2,6}"),
        versions in proptest::collection::vec(arb_version(), 0..4),
        ciphers in proptest::collection::vec(arb_cipher(), 0..8),
        negotiated in proptest::option::of((arb_version(), arb_cipher())),
        records in proptest::collection::vec(arb_record(), 0..12),
        rst in any::<bool>(),
    ) -> ConnectionTranscript {
        let mut t = ConnectionTranscript {
            sni,
            offered_versions: versions,
            offered_ciphers: ciphers,
            negotiated,
            ..Default::default()
        };
        t.push_tcp(TcpEvent::Established);
        for r in records {
            t.push_record(r);
        }
        if rst {
            t.push_tcp(TcpEvent::Rst { from: Direction::ClientToServer });
        }
        t
    }
}

prop_compose! {
    fn arb_flow()(
        dest in "[a-z]{1,12}\\.[a-z]{2,6}",
        at_secs in 0u32..60,
        origin in prop_oneof![
            Just(FlowOrigin::App),
            Just(FlowOrigin::OsAssociatedDomains),
            Just(FlowOrigin::OsBackground),
        ],
        transcript in arb_transcript(),
        mitm in any::<bool>(),
        body in proptest::option::of("[ -~]{0,80}"),
    ) -> FlowRecord {
        FlowRecord {
            dest,
            at_secs,
            origin,
            transcript,
            mitm_attempted: mitm,
            decrypted_request: body,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simcap_roundtrips_arbitrary_captures(
        flows in proptest::collection::vec(arb_flow(), 0..10),
        window in 1u32..120,
    ) {
        let cap = Capture { flows, window_secs: window };
        let bytes = simcap::serialize(&cap);
        let back = simcap::deserialize(&bytes).unwrap();
        prop_assert_eq!(back.window_secs, cap.window_secs);
        prop_assert_eq!(back.flows.len(), cap.flows.len());
        for (a, b) in cap.flows.iter().zip(&back.flows) {
            prop_assert_eq!(&a.dest, &b.dest);
            prop_assert_eq!(a.at_secs, b.at_secs);
            prop_assert_eq!(a.origin, b.origin);
            prop_assert_eq!(a.mitm_attempted, b.mitm_attempted);
            prop_assert_eq!(&a.decrypted_request, &b.decrypted_request);
            prop_assert_eq!(&a.transcript, &b.transcript);
        }
    }

    #[test]
    fn simcap_never_panics_on_mutation(
        flows in proptest::collection::vec(arb_flow(), 1..4),
        flip_at in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let cap = Capture { flows, window_secs: 30 };
        let mut bytes = simcap::serialize(&cap);
        let i = flip_at.index(bytes.len());
        bytes[i] ^= 1 << flip_bit;
        // Corrupted input must error or parse — never panic.
        let _ = simcap::deserialize(&bytes);
    }
}
