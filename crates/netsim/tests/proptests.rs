//! Property-style tests for the netsim substrate: simcap roundtrips over
//! arbitrary captures, and corruption robustness. Inputs come from a
//! deterministic SplitMix64 sweep (no external crates, fully offline).

use pinning_crypto::SplitMix64;
use pinning_netsim::flow::{Capture, FlowOrigin, FlowRecord};
use pinning_netsim::simcap;
use pinning_tls::alert::{AlertDescription, AlertLevel};
use pinning_tls::cipher::CipherSuite;
use pinning_tls::record::{ContentType, Direction, RecordEvent, TcpEvent};
use pinning_tls::{ConnectionTranscript, TlsVersion};

fn pick<T: Copy>(rng: &mut SplitMix64, xs: &[T]) -> T {
    xs[rng.next_below(xs.len() as u64) as usize]
}

fn hostname(rng: &mut SplitMix64) -> String {
    let label = |rng: &mut SplitMix64, min: u64, max: u64| -> String {
        let len = min + rng.next_below(max - min + 1);
        (0..len)
            .map(|_| (b'a' + rng.next_below(26) as u8) as char)
            .collect()
    };
    format!("{}.{}", label(rng, 1, 12), label(rng, 2, 6))
}

fn arb_direction(rng: &mut SplitMix64) -> Direction {
    pick(rng, &[Direction::ClientToServer, Direction::ServerToClient])
}

fn arb_version(rng: &mut SplitMix64) -> TlsVersion {
    pick(
        rng,
        &[
            TlsVersion::V1_0,
            TlsVersion::V1_1,
            TlsVersion::V1_2,
            TlsVersion::V1_3,
        ],
    )
}

fn arb_cipher(rng: &mut SplitMix64) -> CipherSuite {
    let list = CipherSuite::legacy_client_list();
    list[rng.next_below(list.len() as u64) as usize]
}

fn arb_record(rng: &mut SplitMix64) -> RecordEvent {
    let direction = arb_direction(rng);
    let version = arb_version(rng);
    let inner = pick(
        rng,
        &[
            ContentType::Handshake,
            ContentType::Alert,
            ContentType::ApplicationData,
            ContentType::ChangeCipherSpec,
        ],
    );
    let len = rng.next_below(4096) as usize;
    if rng.chance(0.5) {
        RecordEvent::encrypted(direction, version, inner, len)
    } else if rng.chance(0.5) {
        let desc = pick(
            rng,
            &[
                AlertDescription::CloseNotify,
                AlertDescription::HandshakeFailure,
                AlertDescription::BadCertificate,
                AlertDescription::CertificateUnknown,
                AlertDescription::UnknownCa,
                AlertDescription::ProtocolVersion,
                AlertDescription::UnrecognizedName,
            ],
        );
        let level = if rng.chance(0.5) {
            AlertLevel::Fatal
        } else {
            AlertLevel::Warning
        };
        RecordEvent::plaintext_alert(direction, level, desc)
    } else {
        RecordEvent::handshake(direction, len)
    }
}

fn arb_transcript(rng: &mut SplitMix64) -> ConnectionTranscript {
    let sni = rng.chance(0.5).then(|| hostname(rng));
    let versions = (0..rng.next_below(4)).map(|_| arb_version(rng)).collect();
    let ciphers = (0..rng.next_below(8)).map(|_| arb_cipher(rng)).collect();
    let negotiated = rng.chance(0.5).then(|| (arb_version(rng), arb_cipher(rng)));
    let mut t = ConnectionTranscript {
        sni,
        offered_versions: versions,
        offered_ciphers: ciphers,
        negotiated,
        ..Default::default()
    };
    t.push_tcp(TcpEvent::Established);
    for _ in 0..rng.next_below(12) {
        t.push_record(arb_record(rng));
    }
    if rng.chance(0.5) {
        t.push_tcp(TcpEvent::Rst {
            from: Direction::ClientToServer,
        });
    }
    t
}

fn arb_flow(rng: &mut SplitMix64) -> FlowRecord {
    let printable: Vec<u8> = (0x20u8..0x7f).collect();
    let body = rng.chance(0.5).then(|| {
        let len = rng.next_below(81);
        (0..len)
            .map(|_| printable[rng.next_below(printable.len() as u64) as usize] as char)
            .collect::<String>()
    });
    FlowRecord {
        dest: hostname(rng),
        at_secs: rng.next_below(60) as u32,
        origin: pick(
            rng,
            &[
                FlowOrigin::App,
                FlowOrigin::OsAssociatedDomains,
                FlowOrigin::OsBackground,
            ],
        ),
        transcript: arb_transcript(rng),
        mitm_attempted: rng.chance(0.5),
        decrypted_request: body,
    }
}

fn arb_capture(rng: &mut SplitMix64, max_flows: u64) -> Capture {
    Capture {
        flows: (0..rng.next_below(max_flows + 1))
            .map(|_| arb_flow(rng))
            .collect(),
        window_secs: 1 + rng.next_below(119) as u32,
        ..Default::default()
    }
}

#[test]
fn simcap_roundtrips_arbitrary_captures() {
    let mut rng = SplitMix64::new(0x51c);
    for _ in 0..64 {
        let cap = arb_capture(&mut rng, 10);
        let bytes = simcap::serialize(&cap);
        let back = simcap::deserialize(&bytes).unwrap();
        assert_eq!(back.window_secs, cap.window_secs);
        assert_eq!(back.flows.len(), cap.flows.len());
        for (a, b) in cap.flows.iter().zip(&back.flows) {
            assert_eq!(&a.dest, &b.dest);
            assert_eq!(a.at_secs, b.at_secs);
            assert_eq!(a.origin, b.origin);
            assert_eq!(a.mitm_attempted, b.mitm_attempted);
            assert_eq!(&a.decrypted_request, &b.decrypted_request);
            assert_eq!(&a.transcript, &b.transcript);
        }
    }
}

#[test]
fn simcap_never_panics_on_mutation() {
    let mut rng = SplitMix64::new(0x1a7);
    for _ in 0..128 {
        let mut cap = arb_capture(&mut rng, 3);
        if cap.flows.is_empty() {
            cap.flows.push(arb_flow(&mut rng));
        }
        let mut bytes = simcap::serialize(&cap);
        let i = rng.next_below(bytes.len() as u64) as usize;
        bytes[i] ^= 1 << rng.next_below(8);
        // Corrupted input must error or parse — never panic.
        let _ = simcap::deserialize(&bytes);
    }
}

#[test]
fn simcap_never_panics_on_truncation_and_length_lies() {
    let mut rng = SplitMix64::new(0x5ca9);
    for _ in 0..256 {
        let mut cap = arb_capture(&mut rng, 3);
        if cap.flows.is_empty() {
            cap.flows.push(arb_flow(&mut rng));
        }
        let mut bytes = simcap::serialize(&cap);
        match rng.next_below(3) {
            0 => bytes.truncate(rng.next_below(bytes.len() as u64) as usize),
            1 => {
                // A lying length prefix must be rejected before any
                // allocation proportional to the claimed size.
                let i = rng.next_below(bytes.len() as u64) as usize;
                for (dst, src) in bytes[i..].iter_mut().zip(u64::MAX.to_be_bytes()) {
                    *dst = src;
                }
            }
            _ => {
                let at = rng.next_below(bytes.len() as u64 + 1) as usize;
                let mut garbage = vec![0u8; 1 + rng.next_below(16) as usize];
                rng.fill_bytes(&mut garbage);
                bytes.splice(at..at, garbage);
            }
        }
        let _ = simcap::deserialize(&bytes);
    }
}

#[test]
fn simcap_rejects_over_budget_streams_up_front() {
    use pinning_pki::error::DecodeError;
    use pinning_pki::limits::{Budget, Limit};
    let strict = Budget::strict();
    let big = vec![0u8; strict.max_input_bytes + 1];
    assert_eq!(
        simcap::deserialize_with_budget(&big, &strict).err(),
        Some(DecodeError::LimitExceeded(Limit::InputBytes))
    );
}
