//! The mitmproxy model.
//!
//! Real mitmproxy terminates the client's TLS connection, forges a leaf
//! certificate for the requested SNI signed by its own CA, and opens a
//! second connection upstream. For the study only the client-facing half
//! matters: the forged chain and the fact that a successful interception
//! exposes request plaintext (§4.2.1, §4.4).

use pinning_crypto::sig::KeyPair;
use pinning_crypto::SplitMix64;
use pinning_pki::authority::CertificateAuthority;
use pinning_pki::chain::CertificateChain;
use pinning_pki::name::DistinguishedName;
use pinning_pki::time::{SimTime, Validity, DAY};
use pinning_pki::Certificate;
use std::collections::HashMap;
use std::sync::Mutex;

/// A MITM proxy with its own CA.
#[derive(Debug)]
pub struct MitmProxy {
    ca: Mutex<CertificateAuthority>,
    leaf_key: KeyPair,
    forged: Mutex<HashMap<String, CertificateChain>>,
    now: SimTime,
}

impl MitmProxy {
    /// Creates a proxy with a fresh CA. `now` anchors forged-certificate
    /// validity.
    pub fn new(rng: &mut SplitMix64, now: SimTime) -> Self {
        let ca = CertificateAuthority::new_root(
            DistinguishedName::new("mitmproxy", "mitmproxy", "US"),
            rng,
            now - 30 * DAY,
        );
        let leaf_key = KeyPair::generate(rng);
        MitmProxy {
            ca: Mutex::new(ca),
            leaf_key,
            forged: Mutex::new(HashMap::new()),
            now,
        }
    }

    /// The proxy's CA certificate — what gets installed into the test
    /// device's root store.
    pub fn ca_cert(&self) -> Certificate {
        self.ca.lock().expect("proxy lock poisoned").cert.clone()
    }

    /// Forges (or returns the cached) chain for `hostname`, mimicking the
    /// upstream certificate's name coverage.
    pub fn forge_chain(&self, hostname: &str, upstream: &CertificateChain) -> CertificateChain {
        let key = hostname.to_ascii_lowercase();
        if let Some(chain) = self.forged.lock().expect("proxy lock poisoned").get(&key) {
            return chain.clone();
        }
        // Mirror the upstream leaf's SANs so hostname checks still pass.
        let hostnames: Vec<String> = upstream
            .leaf()
            .map(|l| {
                if l.tbs.san.is_empty() {
                    vec![l.tbs.subject.common_name.clone()]
                } else {
                    l.tbs.san.clone()
                }
            })
            .unwrap_or_else(|| vec![hostname.to_string()]);
        let organization = upstream
            .leaf()
            .map(|l| l.tbs.subject.organization.clone())
            .unwrap_or_default();
        let mut ca = self.ca.lock().expect("proxy lock poisoned");
        let leaf = ca.issue_leaf(
            &hostnames,
            &organization,
            &self.leaf_key,
            Validity::starting(self.now - DAY, 365 * DAY),
        );
        let chain = CertificateChain::new(vec![leaf, ca.cert.clone()]);
        self.forged
            .lock()
            .expect("proxy lock poisoned")
            .insert(key, chain.clone());
        chain
    }

    /// Number of distinct hostnames forged so far.
    pub fn forged_count(&self) -> usize {
        self.forged.lock().expect("proxy lock poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_pki::store::RootStore;
    use pinning_pki::universe::{PkiUniverse, UniverseConfig};
    use pinning_pki::validate::{validate_chain, RevocationList, ValidationOptions};

    fn setup() -> (PkiUniverse, MitmProxy, CertificateChain, SplitMix64) {
        let mut rng = SplitMix64::new(0x111);
        let mut u = PkiUniverse::generate(&UniverseConfig::tiny(), &mut rng);
        let proxy = MitmProxy::new(&mut rng, u.now());
        let key = KeyPair::generate(&mut rng);
        let chain = u.issue_server_chain(
            &["api.site.com".to_string(), "*.cdn.site.com".to_string()],
            "Site",
            &key,
            398,
            &mut rng,
        );
        (u, proxy, chain, rng)
    }

    #[test]
    fn forged_chain_roots_at_proxy_ca() {
        let (u, proxy, upstream, _) = setup();
        let forged = proxy.forge_chain("api.site.com", &upstream);
        assert_eq!(forged.len(), 2);
        let mut store = RootStore::new("device");
        store.add(proxy.ca_cert());
        validate_chain(
            forged.certs(),
            &store,
            "api.site.com",
            u.now(),
            &RevocationList::empty(),
            &ValidationOptions::default(),
        )
        .unwrap();
    }

    #[test]
    fn forged_chain_mirrors_sans() {
        let (_, proxy, upstream, _) = setup();
        let forged = proxy.forge_chain("api.site.com", &upstream);
        assert!(forged.leaf().unwrap().matches_hostname("v2.cdn.site.com"));
    }

    #[test]
    fn forging_is_cached_per_host() {
        let (_, proxy, upstream, _) = setup();
        let a = proxy.forge_chain("api.site.com", &upstream);
        let b = proxy.forge_chain("API.SITE.COM", &upstream);
        assert_eq!(a, b);
        assert_eq!(proxy.forged_count(), 1);
    }

    #[test]
    fn forged_leaf_key_differs_from_upstream() {
        let (_, proxy, upstream, _) = setup();
        let forged = proxy.forge_chain("api.site.com", &upstream);
        assert_ne!(
            forged.leaf().unwrap().spki_sha256(),
            upstream.leaf().unwrap().spki_sha256(),
            "a pin on the upstream key must not match the forged chain"
        );
    }
}
