//! `simcap`: a compact binary serialization for captures.
//!
//! The paper publishes its dataset alongside the code; this module is the
//! equivalent artifact format for the simulated study — every capture can
//! be written to bytes, shipped, and re-analyzed without re-running the
//! pipeline. The encoding reuses the deterministic TLV machinery from
//! `pinning-pki` and is versioned by a magic header.

use crate::faults::FaultKind;
use crate::flow::{Capture, FaultEvent, FlowOrigin, FlowRecord};
use pinning_pki::encode::{Reader, Writer};
use pinning_pki::error::DecodeError;
use pinning_tls::alert::{AlertDescription, AlertLevel};
use pinning_tls::cipher::CipherSuite;
use pinning_tls::record::{ContentType, Direction, RecordEvent, TcpEvent, WireEvent};
use pinning_tls::{ConnectionTranscript, TlsVersion};

/// Magic + version header. `SIMCAP02` added the fault journal; `SIMCAP01`
/// streams (no journal) are still readable.
pub const MAGIC: &[u8; 8] = b"SIMCAP02";

/// The previous format version: identical, minus the fault-event list.
pub const MAGIC_V1: &[u8; 8] = b"SIMCAP01";

// TLV tags local to this format (distinct from the certificate tags so a
// mixed stream fails loudly instead of mis-parsing).
const TAG_CAPTURE: u8 = 0x50;
const TAG_FLOW: u8 = 0x51;
const TAG_TRANSCRIPT: u8 = 0x52;
const TAG_EVENT: u8 = 0x53;
const TAG_FAULT: u8 = 0x54;

fn version_id(v: TlsVersion) -> u64 {
    match v {
        TlsVersion::V1_0 => 0,
        TlsVersion::V1_1 => 1,
        TlsVersion::V1_2 => 2,
        TlsVersion::V1_3 => 3,
    }
}

fn version_from(id: u64) -> Result<TlsVersion, DecodeError> {
    Ok(match id {
        0 => TlsVersion::V1_0,
        1 => TlsVersion::V1_1,
        2 => TlsVersion::V1_2,
        3 => TlsVersion::V1_3,
        _ => return Err(DecodeError::BadFieldSize),
    })
}

/// Stable numeric ids for cipher suites (wire format only).
const CIPHERS: [CipherSuite; 15] = [
    CipherSuite::TLS_AES_128_GCM_SHA256,
    CipherSuite::TLS_AES_256_GCM_SHA384,
    CipherSuite::TLS_CHACHA20_POLY1305_SHA256,
    CipherSuite::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
    CipherSuite::TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
    CipherSuite::TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256,
    CipherSuite::TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256,
    CipherSuite::TLS_RSA_WITH_AES_128_CBC_SHA,
    CipherSuite::TLS_RSA_WITH_AES_256_CBC_SHA,
    CipherSuite::TLS_RSA_WITH_DES_CBC_SHA,
    CipherSuite::TLS_RSA_WITH_3DES_EDE_CBC_SHA,
    CipherSuite::TLS_RSA_WITH_RC4_128_SHA,
    CipherSuite::TLS_RSA_WITH_RC4_128_MD5,
    CipherSuite::TLS_RSA_EXPORT_WITH_DES40_CBC_SHA,
    CipherSuite::TLS_RSA_EXPORT_WITH_RC4_40_MD5,
];

// Exhaustive so a new suite is a compile error here, not a runtime panic.
fn cipher_id(c: CipherSuite) -> u64 {
    match c {
        CipherSuite::TLS_AES_128_GCM_SHA256 => 0,
        CipherSuite::TLS_AES_256_GCM_SHA384 => 1,
        CipherSuite::TLS_CHACHA20_POLY1305_SHA256 => 2,
        CipherSuite::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256 => 3,
        CipherSuite::TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384 => 4,
        CipherSuite::TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256 => 5,
        CipherSuite::TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256 => 6,
        CipherSuite::TLS_RSA_WITH_AES_128_CBC_SHA => 7,
        CipherSuite::TLS_RSA_WITH_AES_256_CBC_SHA => 8,
        CipherSuite::TLS_RSA_WITH_DES_CBC_SHA => 9,
        CipherSuite::TLS_RSA_WITH_3DES_EDE_CBC_SHA => 10,
        CipherSuite::TLS_RSA_WITH_RC4_128_SHA => 11,
        CipherSuite::TLS_RSA_WITH_RC4_128_MD5 => 12,
        CipherSuite::TLS_RSA_EXPORT_WITH_DES40_CBC_SHA => 13,
        CipherSuite::TLS_RSA_EXPORT_WITH_RC4_40_MD5 => 14,
    }
}

fn cipher_from(id: u64) -> Result<CipherSuite, DecodeError> {
    CIPHERS
        .get(id as usize)
        .copied()
        .ok_or(DecodeError::BadFieldSize)
}

fn content_id(c: ContentType) -> u64 {
    match c {
        ContentType::Handshake => 0,
        ContentType::Alert => 1,
        ContentType::ApplicationData => 2,
        ContentType::ChangeCipherSpec => 3,
    }
}

fn content_from(id: u64) -> Result<ContentType, DecodeError> {
    Ok(match id {
        0 => ContentType::Handshake,
        1 => ContentType::Alert,
        2 => ContentType::ApplicationData,
        3 => ContentType::ChangeCipherSpec,
        _ => return Err(DecodeError::BadFieldSize),
    })
}

fn direction_id(d: Direction) -> u64 {
    match d {
        Direction::ClientToServer => 0,
        Direction::ServerToClient => 1,
    }
}

fn direction_from(id: u64) -> Result<Direction, DecodeError> {
    Ok(match id {
        0 => Direction::ClientToServer,
        1 => Direction::ServerToClient,
        _ => return Err(DecodeError::BadFieldSize),
    })
}

fn alert_desc_id(d: AlertDescription) -> u64 {
    d.code() as u64
}

fn alert_desc_from(id: u64) -> Result<AlertDescription, DecodeError> {
    Ok(match id {
        0 => AlertDescription::CloseNotify,
        40 => AlertDescription::HandshakeFailure,
        42 => AlertDescription::BadCertificate,
        46 => AlertDescription::CertificateUnknown,
        48 => AlertDescription::UnknownCa,
        70 => AlertDescription::ProtocolVersion,
        112 => AlertDescription::UnrecognizedName,
        _ => return Err(DecodeError::BadFieldSize),
    })
}

fn origin_id(o: FlowOrigin) -> u64 {
    match o {
        FlowOrigin::App => 0,
        FlowOrigin::OsAssociatedDomains => 1,
        FlowOrigin::OsBackground => 2,
    }
}

fn origin_from(id: u64) -> Result<FlowOrigin, DecodeError> {
    Ok(match id {
        0 => FlowOrigin::App,
        1 => FlowOrigin::OsAssociatedDomains,
        2 => FlowOrigin::OsBackground,
        _ => return Err(DecodeError::BadFieldSize),
    })
}

fn fault_kind_id(k: FaultKind) -> u64 {
    match k {
        FaultKind::Dns => 0,
        FaultKind::TcpReset => 1,
        FaultKind::HandshakeTimeout => 2,
        FaultKind::Truncation => 3,
        FaultKind::ProxyCaUnavailable => 4,
        FaultKind::DeviceCrash => 5,
    }
}

fn fault_kind_from(id: u64) -> Result<FaultKind, DecodeError> {
    Ok(match id {
        0 => FaultKind::Dns,
        1 => FaultKind::TcpReset,
        2 => FaultKind::HandshakeTimeout,
        3 => FaultKind::Truncation,
        4 => FaultKind::ProxyCaUnavailable,
        5 => FaultKind::DeviceCrash,
        _ => return Err(DecodeError::BadFieldSize),
    })
}

fn write_fault(w: &mut Writer, f: &FaultEvent) {
    w.nested(TAG_FAULT, |w| {
        match &f.domain {
            Some(d) => {
                w.boolean(true);
                w.string(d);
            }
            None => w.boolean(false),
        }
        w.u64(fault_kind_id(f.kind));
        w.u64(f.at_secs as u64);
    });
}

fn read_fault(r: &mut Reader<'_>) -> Result<FaultEvent, DecodeError> {
    let mut f = r.nested(TAG_FAULT)?;
    let domain = if f.boolean()? {
        Some(f.string()?)
    } else {
        None
    };
    let kind = fault_kind_from(f.u64()?)?;
    let at_secs = f.u64()? as u32;
    Ok(FaultEvent {
        domain,
        kind,
        at_secs,
    })
}

fn write_event(w: &mut Writer, ev: &WireEvent) {
    w.nested(TAG_EVENT, |w| match ev {
        WireEvent::Tcp(t) => {
            w.u64(0);
            match t {
                TcpEvent::Established => {
                    w.u64(0);
                    w.u64(0);
                }
                TcpEvent::Rst { from } => {
                    w.u64(1);
                    w.u64(direction_id(*from));
                }
                TcpEvent::Fin { from } => {
                    w.u64(2);
                    w.u64(direction_id(*from));
                }
            }
        }
        WireEvent::Record(r) => {
            w.u64(1);
            w.u64(direction_id(r.direction));
            w.u64(content_id(r.wire_type));
            w.u64(content_id(r.inner_type));
            w.boolean(r.encrypted);
            w.u64(r.payload_len as u64);
            match r.plaintext_alert {
                Some((level, desc)) => {
                    w.boolean(true);
                    w.boolean(level == AlertLevel::Fatal);
                    w.u64(alert_desc_id(desc));
                }
                None => w.boolean(false),
            }
        }
    });
}

fn read_event(r: &mut Reader<'_>) -> Result<WireEvent, DecodeError> {
    let mut e = r.nested(TAG_EVENT)?;
    Ok(match e.u64()? {
        0 => {
            let kind = e.u64()?;
            let dir = e.u64()?;
            WireEvent::Tcp(match kind {
                0 => TcpEvent::Established,
                1 => TcpEvent::Rst {
                    from: direction_from(dir)?,
                },
                2 => TcpEvent::Fin {
                    from: direction_from(dir)?,
                },
                _ => return Err(DecodeError::BadFieldSize),
            })
        }
        1 => {
            let direction = direction_from(e.u64()?)?;
            let wire_type = content_from(e.u64()?)?;
            let inner_type = content_from(e.u64()?)?;
            let encrypted = e.boolean()?;
            let payload_len = e.u64()? as usize;
            let plaintext_alert = if e.boolean()? {
                let fatal = e.boolean()?;
                let desc = alert_desc_from(e.u64()?)?;
                Some((
                    if fatal {
                        AlertLevel::Fatal
                    } else {
                        AlertLevel::Warning
                    },
                    desc,
                ))
            } else {
                None
            };
            WireEvent::Record(RecordEvent {
                direction,
                wire_type,
                inner_type,
                encrypted,
                payload_len,
                plaintext_alert,
            })
        }
        _ => return Err(DecodeError::BadFieldSize),
    })
}

fn write_transcript(w: &mut Writer, t: &ConnectionTranscript) {
    w.nested(TAG_TRANSCRIPT, |w| {
        match &t.sni {
            Some(s) => {
                w.boolean(true);
                w.string(s);
            }
            None => w.boolean(false),
        }
        w.list(&t.offered_versions, |w, v| w.u64(version_id(*v)));
        w.list(&t.offered_ciphers, |w, c| w.u64(cipher_id(*c)));
        match t.negotiated {
            Some((v, c)) => {
                w.boolean(true);
                w.u64(version_id(v));
                w.u64(cipher_id(c));
            }
            None => w.boolean(false),
        }
        w.list(&t.events, write_event);
    });
}

fn read_transcript(r: &mut Reader<'_>) -> Result<ConnectionTranscript, DecodeError> {
    let mut t = r.nested(TAG_TRANSCRIPT)?;
    let sni = if t.boolean()? {
        Some(t.string()?)
    } else {
        None
    };
    let offered_versions = t.list(|r| version_from(r.u64()?))?;
    let offered_ciphers = t.list(|r| cipher_from(r.u64()?))?;
    let negotiated = if t.boolean()? {
        let v = version_from(t.u64()?)?;
        let c = cipher_from(t.u64()?)?;
        Some((v, c))
    } else {
        None
    };
    let events = t.list(read_event)?;
    Ok(ConnectionTranscript {
        sni,
        offered_versions,
        offered_ciphers,
        negotiated,
        events,
    })
}

/// Serializes a capture to bytes.
pub fn serialize(capture: &Capture) -> Vec<u8> {
    let mut out = MAGIC.to_vec();
    let mut w = Writer::new();
    w.nested(TAG_CAPTURE, |w| {
        w.u64(capture.window_secs as u64);
        w.list(&capture.flows, |w, f| {
            w.nested(TAG_FLOW, |w| {
                w.string(&f.dest);
                w.u64(f.at_secs as u64);
                w.u64(origin_id(f.origin));
                w.boolean(f.mitm_attempted);
                match &f.decrypted_request {
                    Some(body) => {
                        w.boolean(true);
                        w.string(body);
                    }
                    None => w.boolean(false),
                }
                write_transcript(w, &f.transcript);
            });
        });
        w.list(&capture.faults, write_fault);
    });
    out.extend_from_slice(&w.into_bytes());
    out
}

/// Deserializes a capture (current or previous format version) under the
/// workspace-standard hostile-input budget.
pub fn deserialize(bytes: &[u8]) -> Result<Capture, DecodeError> {
    deserialize_with_budget(bytes, &pinning_pki::limits::Budget::STANDARD)
}

/// Deserializes a capture under an explicit [`pinning_pki::limits::Budget`].
///
/// Every length prefix in the stream is validated against the remaining
/// input before any allocation, so a lying length field (claiming, say,
/// 2^60 flows) is rejected up front instead of reserving memory for it.
pub fn deserialize_with_budget(
    bytes: &[u8],
    budget: &pinning_pki::limits::Budget,
) -> Result<Capture, DecodeError> {
    if bytes.len() > budget.max_input_bytes {
        return Err(DecodeError::LimitExceeded(
            pinning_pki::limits::Limit::InputBytes,
        ));
    }
    let (body, has_faults) = if let Some(b) = bytes.strip_prefix(MAGIC.as_slice()) {
        (b, true)
    } else if let Some(b) = bytes.strip_prefix(MAGIC_V1.as_slice()) {
        (b, false)
    } else {
        return Err(DecodeError::BadMagic);
    };
    let mut r = Reader::with_budget(body, *budget);
    let mut c = r.nested(TAG_CAPTURE)?;
    let window_secs = c.u64()? as u32;
    let flows = c.list(|r| {
        let mut f = r.nested(TAG_FLOW)?;
        let dest = f.string()?;
        let at_secs = f.u64()? as u32;
        let origin = origin_from(f.u64()?)?;
        let mitm_attempted = f.boolean()?;
        let decrypted_request = if f.boolean()? {
            Some(f.string()?)
        } else {
            None
        };
        let transcript = read_transcript(&mut f)?;
        Ok(FlowRecord {
            dest,
            at_secs,
            origin,
            transcript,
            mitm_attempted,
            decrypted_request,
        })
    })?;
    let faults = if has_faults {
        c.list(read_fault)?
    } else {
        Vec::new()
    };
    Ok(Capture {
        flows,
        window_secs,
        faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_tls::record::RecordEvent;

    fn sample_capture() -> Capture {
        let mut t = ConnectionTranscript {
            sni: Some("api.x.com".into()),
            offered_versions: vec![TlsVersion::V1_2, TlsVersion::V1_3],
            offered_ciphers: CipherSuite::legacy_client_list(),
            negotiated: Some((TlsVersion::V1_3, CipherSuite::TLS_AES_128_GCM_SHA256)),
            ..Default::default()
        };
        t.push_tcp(TcpEvent::Established);
        t.push_record(RecordEvent::handshake(Direction::ClientToServer, 230));
        t.push_record(RecordEvent::encrypted(
            Direction::ClientToServer,
            TlsVersion::V1_3,
            ContentType::ApplicationData,
            512,
        ));
        t.push_record(RecordEvent::plaintext_alert(
            Direction::ServerToClient,
            AlertLevel::Fatal,
            AlertDescription::UnknownCa,
        ));
        t.push_tcp(TcpEvent::Fin {
            from: Direction::ClientToServer,
        });

        let mut t2 = ConnectionTranscript::new();
        t2.push_tcp(TcpEvent::Established);
        t2.push_tcp(TcpEvent::Rst {
            from: Direction::ServerToClient,
        });

        Capture {
            flows: vec![
                FlowRecord {
                    dest: "api.x.com".into(),
                    at_secs: 2,
                    origin: FlowOrigin::App,
                    transcript: t,
                    mitm_attempted: true,
                    decrypted_request: Some("adid=abc&event=launch".into()),
                },
                FlowRecord {
                    dest: "gateway.icloud.com".into(),
                    at_secs: 0,
                    origin: FlowOrigin::OsBackground,
                    transcript: t2,
                    mitm_attempted: true,
                    decrypted_request: None,
                },
            ],
            window_secs: 30,
            faults: vec![
                FaultEvent {
                    domain: Some("api.x.com".into()),
                    kind: FaultKind::TcpReset,
                    at_secs: 4,
                },
                FaultEvent {
                    domain: None,
                    kind: FaultKind::DeviceCrash,
                    at_secs: 12,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let cap = sample_capture();
        let bytes = serialize(&cap);
        let back = deserialize(&bytes).unwrap();
        assert_eq!(back.window_secs, cap.window_secs);
        assert_eq!(back.flows.len(), cap.flows.len());
        for (a, b) in cap.flows.iter().zip(&back.flows) {
            assert_eq!(a.dest, b.dest);
            assert_eq!(a.at_secs, b.at_secs);
            assert_eq!(a.origin, b.origin);
            assert_eq!(a.mitm_attempted, b.mitm_attempted);
            assert_eq!(a.decrypted_request, b.decrypted_request);
            assert_eq!(a.transcript, b.transcript);
        }
        assert_eq!(back.faults, cap.faults);
    }

    #[test]
    fn v1_streams_without_fault_journal_still_parse() {
        // A SIMCAP01 stream is the same encoding minus the trailing fault
        // list; re-encode the sample by hand to prove back-compat.
        let cap = sample_capture();
        let mut out = MAGIC_V1.to_vec();
        let mut w = Writer::new();
        w.nested(TAG_CAPTURE, |w| {
            w.u64(cap.window_secs as u64);
            w.list(&cap.flows, |w, f| {
                w.nested(TAG_FLOW, |w| {
                    w.string(&f.dest);
                    w.u64(f.at_secs as u64);
                    w.u64(origin_id(f.origin));
                    w.boolean(f.mitm_attempted);
                    match &f.decrypted_request {
                        Some(body) => {
                            w.boolean(true);
                            w.string(body);
                        }
                        None => w.boolean(false),
                    }
                    write_transcript(w, &f.transcript);
                });
            });
        });
        out.extend_from_slice(&w.into_bytes());
        let back = deserialize(&out).unwrap();
        assert_eq!(back.flows.len(), cap.flows.len());
        assert!(back.faults.is_empty(), "v1 streams carry no journal");
    }

    #[test]
    fn rejects_bad_magic() {
        let cap = sample_capture();
        let mut bytes = serialize(&cap);
        bytes[0] ^= 0xff;
        assert_eq!(deserialize(&bytes).err(), Some(DecodeError::BadMagic));
    }

    #[test]
    fn lying_flow_count_rejected_without_allocation() {
        // A stream whose flow-list claims 2^60 entries but carries none:
        // the reader must reject it from the length check alone, never
        // pre-allocating for the claimed count.
        let mut out = MAGIC.to_vec();
        let mut w = Writer::new();
        w.nested(TAG_CAPTURE, |w| {
            w.u64(30); // window_secs
            w.nested(pinning_pki::encode::tag::LIST, |w| {
                w.u64(1 << 60); // lying element count, zero elements follow
            });
        });
        out.extend_from_slice(&w.into_bytes());
        assert_eq!(deserialize(&out).err(), Some(DecodeError::BadLength));
    }

    #[test]
    fn oversized_stream_rejected_by_budget() {
        let strict = pinning_pki::limits::Budget::strict();
        let bytes = vec![0u8; strict.max_input_bytes + 1];
        assert_eq!(
            deserialize_with_budget(&bytes, &strict).err(),
            Some(DecodeError::LimitExceeded(
                pinning_pki::limits::Limit::InputBytes
            ))
        );
    }

    #[test]
    fn rejects_truncation() {
        let bytes = serialize(&sample_capture());
        for cut in [9, 20, bytes.len() - 1] {
            assert!(deserialize(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn empty_capture_roundtrip() {
        let cap = Capture {
            flows: vec![],
            window_secs: 15,
            faults: vec![],
        };
        let back = deserialize(&serialize(&cap)).unwrap();
        assert_eq!(back.window_secs, 15);
        assert!(back.flows.is_empty());
    }

    #[test]
    fn all_cipher_ids_roundtrip() {
        for (i, &c) in CIPHERS.iter().enumerate() {
            assert_eq!(cipher_from(i as u64).unwrap(), c);
            assert_eq!(cipher_id(c), i as u64);
        }
        assert!(cipher_from(CIPHERS.len() as u64).is_err());
    }
}
