//! Per-endpoint circuit breakers for the measurement runtime.
//!
//! The paper's test bed kept burning retry budget on hosts that were down
//! for the whole campaign: every app contacting a dead CDN paid the full
//! timeout ladder again. A circuit breaker remembers that an endpoint has
//! been failing *within the current app's measurement* and short-circuits
//! further attempts until a cooldown has passed.
//!
//! The state machine itself lives in [`pinning_resilience::breaker`] and
//! is shared (one implementation, one test suite) with the
//! `pinning-serve` admission path; this module instantiates it over the
//! netsim fault vocabulary. Only *injected test-bed faults* feed the
//! breaker — ordinary server flakiness and genuine pin-validation
//! failures never do, so a fault-free study behaves exactly as if no
//! breaker existed. Skipped attempts are journaled as
//! [`crate::flow::FaultEvent`]s carrying the fault kind that tripped the
//! breaker; the detector therefore treats the destination as
//! `Unobserved`, preserving the chaos-suite invariant that faults may
//! cost observations but never fabricate them.
//!
//! Determinism: breaker decisions are a pure function of the (seeded,
//! deterministic) fault sequence observed for one app, and every app gets
//! its own [`BreakerSet`], so results are independent of worker count and
//! scheduling order.

use crate::faults::FaultKind;

pub use pinning_resilience::breaker::{BreakerConfig, BreakerState};

/// Verdict for one connection attempt (shared breaker verdict carrying
/// the netsim fault kind).
pub type Admission = pinning_resilience::breaker::Admission<FaultKind>;

/// One breaker per endpoint, scoped to a single app's measurement.
///
/// Interior mutability keeps the call sites in [`crate::device::Device`]
/// (which only holds `&self`) simple; a `BreakerSet` is thread-confined to
/// the worker measuring its app, never shared.
pub type BreakerSet = pinning_resilience::breaker::BreakerSet<FaultKind>;

#[cfg(test)]
mod tests {
    use super::*;

    // The state-machine test suite lives with the shared implementation in
    // `pinning-resilience`; here we only pin the netsim instantiation.
    #[test]
    fn netsim_breaker_carries_fault_kinds() {
        let b = BreakerSet::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_attempts: 2,
        });
        for _ in 0..3 {
            b.record_fault("api.example", FaultKind::HandshakeTimeout);
        }
        assert_eq!(b.state("api.example"), BreakerState::Open);
        assert_eq!(
            b.admit("api.example"),
            Admission::Skip(FaultKind::HandshakeTimeout)
        );
        assert_eq!(b.trips(), 1);
    }
}
