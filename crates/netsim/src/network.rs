//! The hostname→server directory.

use crate::server::OriginServer;
use pinning_pki::validate::RevocationList;
use std::collections::HashMap;

/// A hostname that two servers both claimed at registration time.
///
/// First-writer-wins resolution is correct DNS behavior, but a silently
/// shadowed server usually means a world-generation bug — this record
/// makes the shadowing auditable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateHost {
    /// The contested hostname (lowercased).
    pub hostname: String,
    /// Index of the server that kept the name.
    pub kept_server: usize,
    /// Index of the later server whose claim was ignored.
    pub shadowed_server: usize,
}

/// The simulated internet: every reachable origin server, keyed by
/// hostname, plus global revocation state.
#[derive(Debug, Default)]
pub struct Network {
    servers: Vec<OriginServer>,
    by_host: HashMap<String, usize>,
    duplicates: Vec<DuplicateHost>,
    /// Revoked certificate serials (checked by clients that enable
    /// revocation).
    pub crl: RevocationList,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a server for all its hostnames. Later registrations do not
    /// displace earlier ones (first writer wins, like first-come DNS);
    /// every shadowed claim is recorded in [`Network::duplicate_hosts`].
    pub fn register(&mut self, server: OriginServer) -> usize {
        let idx = self.servers.len();
        for host in &server.hostnames {
            let key = host.to_ascii_lowercase();
            match self.by_host.entry(key.clone()) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    self.duplicates.push(DuplicateHost {
                        hostname: key,
                        kept_server: *e.get(),
                        shadowed_server: idx,
                    });
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(idx);
                }
            }
        }
        self.servers.push(server);
        idx
    }

    /// Hostnames claimed by more than one registration, in registration
    /// order.
    pub fn duplicate_hosts(&self) -> &[DuplicateHost] {
        &self.duplicates
    }

    /// Resolves a hostname.
    pub fn resolve(&self, hostname: &str) -> Option<&OriginServer> {
        self.by_host
            .get(&hostname.to_ascii_lowercase())
            .map(|&i| &self.servers[i])
    }

    /// Resolves a hostname to a mutable origin server — used by epoch
    /// evolution to swap a server's chain on reissue. Hostname claims stay
    /// fixed; only served state may change.
    pub fn resolve_mut(&mut self, hostname: &str) -> Option<&mut OriginServer> {
        let &i = self.by_host.get(&hostname.to_ascii_lowercase())?;
        Some(&mut self.servers[i])
    }

    /// Whether a hostname resolves.
    pub fn has_host(&self, hostname: &str) -> bool {
        self.by_host.contains_key(&hostname.to_ascii_lowercase())
    }

    /// All registered servers.
    pub fn servers(&self) -> &[OriginServer] {
        &self.servers
    }

    /// Mutable access to all registered servers (hostname claims are fixed
    /// at registration; this exists for post-generation passes over served
    /// chains, e.g. certificate interning).
    pub fn servers_mut(&mut self) -> &mut [OriginServer] {
        &mut self.servers
    }

    /// Number of distinct hostnames.
    pub fn n_hostnames(&self) -> usize {
        self.by_host.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_crypto::sig::KeyPair;
    use pinning_crypto::SplitMix64;
    use pinning_pki::universe::{PkiUniverse, UniverseConfig};

    fn server(u: &mut PkiUniverse, rng: &mut SplitMix64, host: &str) -> OriginServer {
        let key = KeyPair::generate(rng);
        let chain = u.issue_server_chain(&[host.to_string()], "Org", &key, 398, rng);
        OriginServer::modern(vec![host.to_string()], "Org".into(), chain)
    }

    #[test]
    fn register_and_resolve() {
        let mut rng = SplitMix64::new(2);
        let mut u = PkiUniverse::generate(&UniverseConfig::tiny(), &mut rng);
        let mut net = Network::new();
        net.register(server(&mut u, &mut rng, "a.com"));
        assert!(net.has_host("a.com"));
        assert!(net.has_host("A.COM"), "case-insensitive");
        assert!(!net.has_host("b.com"));
        assert_eq!(net.resolve("a.com").unwrap().hostnames[0], "a.com");
    }

    #[test]
    fn first_registration_wins() {
        let mut rng = SplitMix64::new(3);
        let mut u = PkiUniverse::generate(&UniverseConfig::tiny(), &mut rng);
        let mut net = Network::new();
        let mut s1 = server(&mut u, &mut rng, "x.com");
        s1.response_bytes = 111;
        let mut s2 = server(&mut u, &mut rng, "x.com");
        s2.response_bytes = 222;
        net.register(s1);
        net.register(s2);
        assert_eq!(net.resolve("x.com").unwrap().response_bytes, 111);
        assert_eq!(
            net.duplicate_hosts(),
            &[DuplicateHost {
                hostname: "x.com".into(),
                kept_server: 0,
                shadowed_server: 1
            }]
        );
    }

    #[test]
    fn unique_registrations_report_no_duplicates() {
        let mut rng = SplitMix64::new(5);
        let mut u = PkiUniverse::generate(&UniverseConfig::tiny(), &mut rng);
        let mut net = Network::new();
        net.register(server(&mut u, &mut rng, "a.com"));
        net.register(server(&mut u, &mut rng, "b.com"));
        assert!(net.duplicate_hosts().is_empty());
    }

    #[test]
    fn multi_host_server() {
        let mut rng = SplitMix64::new(4);
        let mut u = PkiUniverse::generate(&UniverseConfig::tiny(), &mut rng);
        let key = KeyPair::generate(&mut rng);
        let hosts = vec!["api.y.com".to_string(), "cdn.y.com".to_string()];
        let chain = u.issue_server_chain(&hosts, "Y", &key, 398, &mut rng);
        let mut net = Network::new();
        net.register(OriginServer::modern(hosts, "Y".into(), chain));
        assert!(net.has_host("api.y.com"));
        assert!(net.has_host("cdn.y.com"));
        assert_eq!(net.n_hostnames(), 2);
        assert_eq!(net.servers().len(), 1);
    }
}
