//! Deterministic fault injection for the measurement test bed.
//!
//! The paper's pipeline ran against real devices and a real proxy, and a
//! sizable share of runs degraded: DNS hiccups, dropped TCP sessions,
//! handshakes that never completed, a proxy whose CA was not installed in
//! time, devices that crashed mid-run (§4.5, §5.6). This module models
//! those failures as a *seeded* schedule so that robustness of the
//! analysis pipeline can be tested reproducibly: the same seed and fault
//! configuration always yield the same faults, independent of the order
//! in which runs execute.
//!
//! Every decision is keyed by [`SplitMix64::derive`]-chained tags over the
//! run key, destination, and attempt number, so
//!
//! * two devices replaying the same run observe the same faults, and
//! * a *retry* (different attempt number) gets a fresh draw — transient
//!   faults can clear, exactly like in the field.

use pinning_crypto::SplitMix64;

/// A single injected fault, as drawn from a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Name resolution failed; no packets reach the origin.
    Dns,
    /// The TCP session was reset by the network mid-connection.
    TcpReset,
    /// The TLS handshake hung until the client gave up.
    HandshakeTimeout,
    /// The connection established but was cut before application data
    /// completed.
    Truncation,
    /// The proxy's CA was unavailable for the whole run (MITM runs only).
    ProxyCaUnavailable,
    /// The device crashed partway through the run, losing the capture.
    DeviceCrash,
}

impl FaultKind {
    /// The measurement-level error this fault surfaces as when a run (or
    /// destination) never completes because of it.
    pub fn as_error(self) -> MeasurementError {
        match self {
            FaultKind::Dns => MeasurementError::Dns,
            FaultKind::TcpReset => MeasurementError::Tcp,
            FaultKind::HandshakeTimeout => MeasurementError::Handshake,
            FaultKind::Truncation => MeasurementError::Truncated,
            FaultKind::ProxyCaUnavailable => MeasurementError::Handshake,
            FaultKind::DeviceCrash => MeasurementError::DeviceCrash,
        }
    }

    /// Short stable label used in tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Dns => "dns",
            FaultKind::TcpReset => "tcp-reset",
            FaultKind::HandshakeTimeout => "handshake-timeout",
            FaultKind::Truncation => "truncation",
            FaultKind::ProxyCaUnavailable => "proxy-ca-unavailable",
            FaultKind::DeviceCrash => "device-crash",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a per-app measurement could not be completed.
///
/// This is the error taxonomy threaded from the device runtime up into
/// `AppRecord` / `StudyResults`: an app whose measurement keeps faulting
/// past the retry budget is recorded as *degraded* with one of these,
/// instead of being silently dropped or — worse — mis-classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MeasurementError {
    /// Name resolution failed for every attempt.
    Dns,
    /// TCP-level connectivity kept failing (resets).
    Tcp,
    /// TLS handshakes never completed (timeouts or missing proxy CA).
    Handshake,
    /// Connections kept truncating before application data completed.
    Truncated,
    /// The device crashed on every attempt.
    DeviceCrash,
    /// The per-app retry deadline elapsed before a clean pair of runs.
    Deadline,
    /// The worker measuring this app panicked; the supervisor recovered
    /// and degraded the app instead of aborting the study.
    WorkerPanic,
    /// The app's inputs (package assets or the chain its servers present)
    /// are malformed or pathological: a decoder or the chain screen
    /// rejected them. The measurement is reported as lost — a hostile
    /// input never fabricates or suppresses a pinning verdict (the same
    /// contract as PR1's Unobserved rule).
    MalformedInput {
        /// Which input layer rejected the data.
        layer: InputLayer,
        /// How the input was malformed.
        reason: MalformedKind,
    },
}

/// Which decode / screening layer rejected a hostile input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InputLayer {
    /// The DER-like certificate decoder (`pinning_pki::encode`).
    Der,
    /// PEM framing (delimiters, base64 body).
    Pem,
    /// The XML parser (`pinning_app::xml`).
    Xml,
    /// Network Security Config interpretation (`pinning_app::nsc`).
    Nsc,
    /// The `simcap` capture format.
    Simcap,
    /// The study write-ahead journal.
    Journal,
    /// Run-time chain screening (`pinning_pki::limits::screen_chain`).
    Chain,
}

impl InputLayer {
    /// All layers, in display order (for the resilience table).
    pub const ALL: [InputLayer; 7] = [
        InputLayer::Der,
        InputLayer::Pem,
        InputLayer::Xml,
        InputLayer::Nsc,
        InputLayer::Simcap,
        InputLayer::Journal,
        InputLayer::Chain,
    ];

    /// Short stable label used in tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            InputLayer::Der => "der",
            InputLayer::Pem => "pem",
            InputLayer::Xml => "xml",
            InputLayer::Nsc => "nsc",
            InputLayer::Simcap => "simcap",
            InputLayer::Journal => "journal",
            InputLayer::Chain => "chain",
        }
    }

    /// The `MeasurementError::label()` string for a malformed input
    /// rejected at this layer.
    pub fn malformed_label(self) -> &'static str {
        match self {
            InputLayer::Der => "malformed-der",
            InputLayer::Pem => "malformed-pem",
            InputLayer::Xml => "malformed-xml",
            InputLayer::Nsc => "malformed-nsc",
            InputLayer::Simcap => "malformed-simcap",
            InputLayer::Journal => "malformed-journal",
            InputLayer::Chain => "malformed-chain",
        }
    }
}

impl std::fmt::Display for InputLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How a hostile input was malformed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MalformedKind {
    /// Input ended before a complete structure.
    Truncated,
    /// Structurally invalid (bad tags, framing, linkage, repetition).
    BadStructure,
    /// A field failed to decode (bad UTF-8, bad base64, bad magic).
    BadEncoding,
    /// A [`pinning_pki::limits::Budget`] limit was tripped.
    LimitExceeded,
}

impl MalformedKind {
    /// All kinds, in display order.
    pub const ALL: [MalformedKind; 4] = [
        MalformedKind::Truncated,
        MalformedKind::BadStructure,
        MalformedKind::BadEncoding,
        MalformedKind::LimitExceeded,
    ];

    /// Short stable label used in tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            MalformedKind::Truncated => "truncated",
            MalformedKind::BadStructure => "bad-structure",
            MalformedKind::BadEncoding => "bad-encoding",
            MalformedKind::LimitExceeded => "limit-exceeded",
        }
    }

    /// Classifies a [`pinning_pki::error::DecodeError`].
    pub fn from_decode_error(e: &pinning_pki::error::DecodeError) -> Self {
        use pinning_pki::error::DecodeError as E;
        match e {
            E::Truncated => MalformedKind::Truncated,
            E::UnexpectedTag { .. } | E::BadLength | E::BadPem => MalformedKind::BadStructure,
            E::BadUtf8 | E::BadPemBase64 | E::BadFieldSize | E::BadMagic => {
                MalformedKind::BadEncoding
            }
            E::LimitExceeded(_) => MalformedKind::LimitExceeded,
        }
    }
}

impl std::fmt::Display for MalformedKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl MeasurementError {
    /// Short stable label used in tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            MeasurementError::Dns => "dns",
            MeasurementError::Tcp => "tcp",
            MeasurementError::Handshake => "handshake",
            MeasurementError::Truncated => "truncated",
            MeasurementError::DeviceCrash => "device-crash",
            MeasurementError::Deadline => "deadline",
            MeasurementError::WorkerPanic => "worker-panic",
            MeasurementError::MalformedInput { layer, .. } => layer.malformed_label(),
        }
    }

    /// The scalar (field-free) variants, in display order — the degraded
    /// summary iterates these; `MalformedInput` is broken out per layer in
    /// the resilience table instead.
    pub const ALL: [MeasurementError; 7] = [
        MeasurementError::Dns,
        MeasurementError::Tcp,
        MeasurementError::Handshake,
        MeasurementError::Truncated,
        MeasurementError::DeviceCrash,
        MeasurementError::Deadline,
        MeasurementError::WorkerPanic,
    ];

    /// The layer/reason pair when this error is a malformed-input
    /// rejection.
    pub fn malformed_parts(self) -> Option<(InputLayer, MalformedKind)> {
        match self {
            MeasurementError::MalformedInput { layer, reason } => Some((layer, reason)),
            _ => None,
        }
    }
}

impl std::fmt::Display for MeasurementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-fault-class probabilities, each in `[0, 1]`, applied independently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability a connection attempt fails name resolution.
    pub dns_failure: f64,
    /// Probability a connection attempt is reset mid-session.
    pub tcp_reset: f64,
    /// Probability a handshake hangs until timeout.
    pub handshake_timeout: f64,
    /// Probability an established connection truncates mid-stream.
    pub truncation: f64,
    /// Probability the proxy CA is unavailable for an entire MITM run.
    pub proxy_ca_unavailable: f64,
    /// Probability the device crashes partway through a run.
    pub device_crash: f64,
}

impl FaultConfig {
    /// No faults at all (the pre-chaos behavior).
    pub fn none() -> Self {
        FaultConfig {
            dns_failure: 0.0,
            tcp_reset: 0.0,
            handshake_timeout: 0.0,
            truncation: 0.0,
            proxy_ca_unavailable: 0.0,
            device_crash: 0.0,
        }
    }

    /// Every per-connection fault class at probability `p`; run-level
    /// faults (proxy CA, crash) at `p / 4` so whole runs still mostly
    /// survive.
    pub fn uniform(p: f64) -> Self {
        FaultConfig {
            dns_failure: p,
            tcp_reset: p,
            handshake_timeout: p,
            truncation: p,
            proxy_ca_unavailable: p / 4.0,
            device_crash: p / 4.0,
        }
    }

    /// An aggressive schedule for chaos testing.
    pub fn chaos() -> Self {
        FaultConfig {
            dns_failure: 0.25,
            tcp_reset: 0.25,
            handshake_timeout: 0.2,
            truncation: 0.2,
            proxy_ca_unavailable: 0.15,
            device_crash: 0.1,
        }
    }

    /// True when every probability is zero: the plan will never fire.
    pub fn is_quiet(&self) -> bool {
        self.dns_failure == 0.0
            && self.tcp_reset == 0.0
            && self.handshake_timeout == 0.0
            && self.truncation == 0.0
            && self.proxy_ca_unavailable == 0.0
            && self.device_crash == 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// A run-level abort: the whole capture is lost, not just one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunAbort {
    /// The device crashed `at_secs` into the capture window.
    DeviceCrash {
        /// Seconds into the window at which the crash happened.
        at_secs: u32,
    },
    /// The proxy CA was unavailable; an MITM run yields nothing usable.
    ProxyCaUnavailable,
}

impl RunAbort {
    /// The measurement-level error a run abort surfaces as.
    pub fn as_error(self) -> MeasurementError {
        match self {
            RunAbort::DeviceCrash { .. } => MeasurementError::DeviceCrash,
            RunAbort::ProxyCaUnavailable => MeasurementError::Handshake,
        }
    }
}

/// A seeded fault schedule.
///
/// The plan owns a domain-separated RNG root; every query re-derives from
/// it, so queries are pure functions of `(seed, config, run_key, …)` and
/// the plan can be shared immutably across device threads.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    root: SplitMix64,
    config: FaultConfig,
}

impl FaultPlan {
    /// A plan drawing from `seed` with the given per-class rates.
    pub fn new(seed: u64, config: FaultConfig) -> Self {
        FaultPlan {
            root: SplitMix64::new(seed).derive("faults"),
            config,
        }
    }

    /// A plan that never injects anything.
    pub fn disabled() -> Self {
        FaultPlan::new(0, FaultConfig::none())
    }

    /// The configured rates.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// True when this plan can never fire.
    pub fn is_quiet(&self) -> bool {
        self.config.is_quiet()
    }

    /// Whether the run identified by `run_key` aborts wholesale.
    ///
    /// A device crash is drawn first (it can hit any run); the proxy-CA
    /// fault only applies to MITM runs. `window_secs` bounds the crash
    /// offset.
    pub fn run_abort(&self, run_key: &str, mitm: bool, window_secs: u32) -> Option<RunAbort> {
        if self.is_quiet() {
            return None;
        }
        let mut rng = self.root.clone().derive(run_key).derive("abort");
        if rng.chance(self.config.device_crash) {
            let at_secs = rng.next_below(window_secs.max(1) as u64) as u32;
            return Some(RunAbort::DeviceCrash { at_secs });
        }
        if mitm && rng.chance(self.config.proxy_ca_unavailable) {
            return Some(RunAbort::ProxyCaUnavailable);
        }
        None
    }

    /// The fault (if any) hitting one connection attempt.
    ///
    /// Keyed by `(run_key, domain, attempt)`: the same attempt always
    /// faults the same way, while a retry gets an independent draw. Coins
    /// are flipped in a fixed order (DNS → reset → handshake → truncation)
    /// and the first hit wins.
    pub fn connection_fault(&self, run_key: &str, domain: &str, attempt: u32) -> Option<FaultKind> {
        if self.is_quiet() {
            return None;
        }
        let mut rng = self
            .root
            .clone()
            .derive(run_key)
            .derive(&format!("conn/{domain}/{attempt}"));
        if rng.chance(self.config.dns_failure) {
            return Some(FaultKind::Dns);
        }
        if rng.chance(self.config.tcp_reset) {
            return Some(FaultKind::TcpReset);
        }
        if rng.chance(self.config.handshake_timeout) {
            return Some(FaultKind::HandshakeTimeout);
        }
        if rng.chance(self.config.truncation) {
            return Some(FaultKind::Truncation);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_decisions() {
        let a = FaultPlan::new(0xFA11, FaultConfig::chaos());
        let b = FaultPlan::new(0xFA11, FaultConfig::chaos());
        for run in ["baseline", "mitm", "mitm+frida"] {
            assert_eq!(a.run_abort(run, true, 30), b.run_abort(run, true, 30));
            for domain in ["api.example", "cdn.example", "t.example"] {
                for attempt in 0..4 {
                    assert_eq!(
                        a.connection_fault(run, domain, attempt),
                        b.connection_fault(run, domain, attempt),
                        "{run}/{domain}/{attempt}"
                    );
                }
            }
        }
    }

    #[test]
    fn decisions_are_order_independent() {
        let plan = FaultPlan::new(7, FaultConfig::chaos());
        let first = plan.connection_fault("baseline", "a.example", 0);
        // Interleave unrelated queries; the original draw must not move.
        let _ = plan.connection_fault("mitm", "b.example", 2);
        let _ = plan.run_abort("mitm", true, 30);
        assert_eq!(plan.connection_fault("baseline", "a.example", 0), first);
    }

    #[test]
    fn quiet_plan_never_fires() {
        let plan = FaultPlan::disabled();
        assert!(plan.is_quiet());
        for i in 0..200 {
            let key = format!("run{i}");
            assert_eq!(plan.run_abort(&key, true, 30), None);
            assert_eq!(plan.connection_fault(&key, "x.example", 0), None);
        }
    }

    #[test]
    fn retries_get_fresh_draws() {
        // With a high per-connection rate, at least one (domain, attempt)
        // pair must differ from attempt 0 — retries are not frozen.
        let plan = FaultPlan::new(42, FaultConfig::uniform(0.5));
        let differs = (0..50).any(|i| {
            let d = format!("host{i}.example");
            plan.connection_fault("baseline", &d, 0) != plan.connection_fault("baseline", &d, 1)
        });
        assert!(differs, "attempt number must influence the draw");
    }

    #[test]
    fn rates_scale_fault_frequency() {
        let low = FaultPlan::new(1, FaultConfig::uniform(0.01));
        let high = FaultPlan::new(1, FaultConfig::uniform(0.4));
        let count = |plan: &FaultPlan| {
            (0..500)
                .filter(|i| {
                    plan.connection_fault("baseline", &format!("h{i}.example"), 0)
                        .is_some()
                })
                .count()
        };
        let (lo, hi) = (count(&low), count(&high));
        assert!(lo < hi, "low-rate plan fired {lo} >= high-rate {hi}");
        assert!(hi > 100, "high-rate plan barely fired: {hi}");
    }

    #[test]
    fn crash_offset_respects_window() {
        let plan = FaultPlan::new(
            3,
            FaultConfig {
                device_crash: 1.0,
                ..FaultConfig::none()
            },
        );
        for i in 0..100 {
            match plan.run_abort(&format!("r{i}"), false, 30) {
                Some(RunAbort::DeviceCrash { at_secs }) => assert!(at_secs < 30),
                other => panic!("crash rate 1.0 must always crash, got {other:?}"),
            }
        }
    }

    #[test]
    fn proxy_ca_fault_only_hits_mitm_runs() {
        let plan = FaultPlan::new(
            9,
            FaultConfig {
                proxy_ca_unavailable: 1.0,
                ..FaultConfig::none()
            },
        );
        assert_eq!(plan.run_abort("r", false, 30), None);
        assert_eq!(
            plan.run_abort("r", true, 30),
            Some(RunAbort::ProxyCaUnavailable)
        );
    }

    #[test]
    fn malformed_labels_are_distinct_and_stable() {
        let mut labels: Vec<&str> = MeasurementError::ALL.iter().map(|e| e.label()).collect();
        for layer in InputLayer::ALL {
            labels.push(layer.malformed_label());
        }
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len(), "labels must be unique");
        let e = MeasurementError::MalformedInput {
            layer: InputLayer::Chain,
            reason: MalformedKind::LimitExceeded,
        };
        assert_eq!(e.label(), "malformed-chain");
        assert_eq!(
            e.malformed_parts(),
            Some((InputLayer::Chain, MalformedKind::LimitExceeded))
        );
        assert_eq!(MeasurementError::Dns.malformed_parts(), None);
    }

    #[test]
    fn decode_errors_classify_into_malformed_kinds() {
        use pinning_pki::error::DecodeError as E;
        assert_eq!(
            MalformedKind::from_decode_error(&E::Truncated),
            MalformedKind::Truncated
        );
        assert_eq!(
            MalformedKind::from_decode_error(&E::BadLength),
            MalformedKind::BadStructure
        );
        assert_eq!(
            MalformedKind::from_decode_error(&E::BadMagic),
            MalformedKind::BadEncoding
        );
        assert_eq!(
            MalformedKind::from_decode_error(&E::LimitExceeded(pinning_pki::limits::Limit::Depth)),
            MalformedKind::LimitExceeded
        );
    }

    #[test]
    fn every_fault_maps_into_the_error_taxonomy() {
        let kinds = [
            FaultKind::Dns,
            FaultKind::TcpReset,
            FaultKind::HandshakeTimeout,
            FaultKind::Truncation,
            FaultKind::ProxyCaUnavailable,
            FaultKind::DeviceCrash,
        ];
        for k in kinds {
            let e = k.as_error();
            assert!(
                MeasurementError::ALL.contains(&e),
                "{k} maps to unknown error {e}"
            );
        }
    }
}
