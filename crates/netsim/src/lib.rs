//! Virtual network substrate: origin servers, MITM proxy, device runtime,
//! and traffic capture.
//!
//! This crate is the stand-in for the paper's physical test bed (§4.2.1):
//! a Pixel 3 / iPhone X behind a WiFi hotspot, mitmproxy on the gateway,
//! and per-app pcap capture. The pieces:
//!
//! * [`server`] — origin servers keyed by hostname, each presenting a
//!   certificate chain and cipher/version support;
//! * [`network`] — the hostname→server directory (DNS + routing collapsed
//!   into one lookup) plus global revocation state;
//! * [`proxy`] — the mitmproxy model: a CA keypair, on-the-fly leaf forging
//!   per SNI, and plaintext visibility into intercepted connections;
//! * [`device`] — installs/launches one app at a time, schedules its
//!   planned connections on the virtual clock, runs handshakes through
//!   `pinning-tls`, and (on iOS) injects the OS background traffic that
//!   plagued the paper's pipeline (§4.5);
//! * [`flow`] — the capture: one [`flow::FlowRecord`] per connection,
//!   carrying the wire transcript plus (for successfully intercepted flows)
//!   the decrypted request body;
//! * [`simcap`] — a versioned binary serialization of captures, so the
//!   study's raw data can be published and re-analyzed (the paper releases
//!   its dataset the same way);
//! * [`faults`] — a seeded fault-injection schedule (DNS failures, TCP
//!   resets, handshake timeouts, truncation, proxy-CA loss, device
//!   crashes) modelling the degraded runs the paper's physical pipeline
//!   suffered (§4.5, §5.6);
//! * [`breaker`] — per-endpoint circuit breakers (closed→open→half-open)
//!   that stop persistently faulty hosts from consuming retry budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod device;
pub mod faults;
pub mod flow;
pub mod network;
pub mod proxy;
pub mod server;
pub mod simcap;

pub use breaker::{Admission, BreakerConfig, BreakerSet, BreakerState};
pub use device::{Device, RunConfig};
pub use faults::{
    FaultConfig, FaultKind, FaultPlan, InputLayer, MalformedKind, MeasurementError, RunAbort,
};
pub use flow::{Capture, FaultEvent, FlowOrigin, FlowRecord};
pub use network::{DuplicateHost, Network};
pub use proxy::MitmProxy;
pub use server::OriginServer;

/// Apple-operated domains contacted by iOS itself for the whole duration of
/// any test (§4.5): excluded from pinning attribution by the paper's
/// pipeline because the traffic is OS-initiated.
pub const APPLE_BACKGROUND_DOMAINS: [&str; 3] = [
    "gateway.icloud.com",
    "init.itunes.apple.com",
    "config.mzstatic.com",
];
