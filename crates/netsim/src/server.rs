//! Origin servers.

use pinning_pki::chain::CertificateChain;
use pinning_tls::{CipherSuite, TlsVersion};

/// An origin server: the thing a hostname resolves to.
#[derive(Debug, Clone)]
pub struct OriginServer {
    /// Hostnames this server answers for.
    pub hostnames: Vec<String>,
    /// Organization operating the server (first-/third-party attribution
    /// consults this through the whois registry, not directly).
    pub organization: String,
    /// Chain presented during handshakes.
    pub chain: CertificateChain,
    /// Supported protocol versions.
    pub versions: Vec<TlsVersion>,
    /// Supported cipher suites, in preference order.
    pub ciphers: Vec<CipherSuite>,
    /// Probability that a given connection attempt succeeds at the TCP
    /// level (models the server-side flakiness the paper had to exclude).
    pub reliability: f64,
    /// Typical response size in bytes.
    pub response_bytes: usize,
}

impl OriginServer {
    /// A reliable modern server for `hostnames` presenting `chain`.
    pub fn modern(hostnames: Vec<String>, organization: String, chain: CertificateChain) -> Self {
        OriginServer {
            hostnames,
            organization,
            chain,
            versions: vec![TlsVersion::V1_2, TlsVersion::V1_3],
            ciphers: CipherSuite::typical_server_list(),
            reliability: 0.995,
            response_bytes: 4096,
        }
    }

    /// Restricts the server to TLS 1.2 (a sizeable share of real servers at
    /// the paper's capture time).
    pub fn tls12_only(mut self) -> Self {
        self.versions = vec![TlsVersion::V1_2];
        self
    }

    /// Marks the server as flaky.
    pub fn flaky(mut self, reliability: f64) -> Self {
        self.reliability = reliability;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_crypto::sig::KeyPair;
    use pinning_crypto::SplitMix64;
    use pinning_pki::universe::{PkiUniverse, UniverseConfig};

    #[test]
    fn construction_defaults() {
        let mut rng = SplitMix64::new(1);
        let mut u = PkiUniverse::generate(&UniverseConfig::tiny(), &mut rng);
        let key = KeyPair::generate(&mut rng);
        let chain = u.issue_server_chain(&["a.com".to_string()], "A", &key, 398, &mut rng);
        let s = OriginServer::modern(vec!["a.com".into()], "A".into(), chain);
        assert!(s.versions.contains(&TlsVersion::V1_3));
        assert!(s.reliability > 0.99);
        let s12 = s.tls12_only();
        assert_eq!(s12.versions, vec![TlsVersion::V1_2]);
    }
}
