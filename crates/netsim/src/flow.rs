//! Flow records and captures: the pipeline's raw material.

use crate::faults::FaultKind;
use pinning_tls::ConnectionTranscript;
use std::collections::{BTreeMap, BTreeSet};

/// Who initiated a flow.
///
/// Analysis code is only allowed to consult this through legitimate
/// channels: app flows vs OS flows are *not* distinguishable on the wire
/// (§4.5 — "the traffic from OS exhibits a similar TLS fingerprint as
/// regular app traffic"), so the pipeline must instead exclude known Apple
/// domains and entitlement-declared associated domains. The field exists
/// for ground-truth evaluation and the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowOrigin {
    /// Initiated by the app under test.
    App,
    /// iOS verifying the app's associated domains after install.
    OsAssociatedDomains,
    /// Always-on Apple background services.
    OsBackground,
}

/// One captured TCP+TLS connection.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    /// Destination hostname as *ground truth* (oracle only — the pipeline
    /// keys on the SNI inside the transcript).
    pub dest: String,
    /// Seconds after capture start at which the flow began.
    pub at_secs: u32,
    /// Who initiated the flow (oracle; see [`FlowOrigin`]).
    pub origin: FlowOrigin,
    /// Wire observables.
    pub transcript: ConnectionTranscript,
    /// Whether this run routed through the MITM proxy.
    pub mitm_attempted: bool,
    /// Request plaintext, available only when the proxy successfully
    /// intercepted (what §4.4's PII analysis reads).
    pub decrypted_request: Option<String>,
}

impl FlowRecord {
    /// The destination key the *pipeline* may use: the SNI, if present.
    pub fn sni(&self) -> Option<&str> {
        self.transcript.sni.as_deref()
    }
}

/// One injected fault observed during a run.
///
/// The device runtime journals every fault it injects so that downstream
/// analysis can tell "this destination failed because it pins" apart from
/// "this destination failed because the test bed faulted" — the exact
/// confusion behind the paper's partial-observation caveats (§5.6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Destination the fault hit, or `None` for run-level faults.
    pub domain: Option<String>,
    /// What kind of fault fired.
    pub kind: FaultKind,
    /// Seconds into the capture window.
    pub at_secs: u32,
}

/// Everything captured during one app run.
#[derive(Debug, Clone, Default)]
pub struct Capture {
    /// Flows in start order.
    pub flows: Vec<FlowRecord>,
    /// Length of the capture window in seconds.
    pub window_secs: u32,
    /// Journal of injected faults, in occurrence order.
    pub faults: Vec<FaultEvent>,
}

impl Capture {
    /// Groups flows by SNI destination. Flows without SNI are dropped, as
    /// in the paper (99% carry SNI; the rest can't be keyed).
    pub fn by_destination(&self) -> BTreeMap<&str, Vec<&FlowRecord>> {
        let mut map: BTreeMap<&str, Vec<&FlowRecord>> = BTreeMap::new();
        for f in &self.flows {
            if let Some(sni) = f.sni() {
                map.entry(sni).or_default().push(f);
            }
        }
        map
    }

    /// Number of TLS handshakes attempted (== flows, in this model).
    pub fn n_handshakes(&self) -> usize {
        self.flows.len()
    }

    /// True when at least one fault fired during this run.
    pub fn has_faults(&self) -> bool {
        !self.faults.is_empty()
    }

    /// Destinations hit by at least one fault (run-level faults carry no
    /// domain and are not included).
    pub fn faulted_domains(&self) -> BTreeSet<&str> {
        self.faults
            .iter()
            .filter_map(|f| f.domain.as_deref())
            .collect()
    }

    /// The most frequent fault kind in the journal, ties broken by enum
    /// order. `None` when the run was clean.
    pub fn dominant_fault(&self) -> Option<FaultKind> {
        let mut counts: BTreeMap<FaultKind, usize> = BTreeMap::new();
        for f in &self.faults {
            *counts.entry(f.kind).or_default() += 1;
        }
        counts.into_iter().max_by_key(|&(_, n)| n).map(|(k, _)| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(dest: &str, sni: Option<&str>) -> FlowRecord {
        let mut t = ConnectionTranscript::new();
        t.sni = sni.map(str::to_string);
        FlowRecord {
            dest: dest.to_string(),
            at_secs: 0,
            origin: FlowOrigin::App,
            transcript: t,
            mitm_attempted: false,
            decrypted_request: None,
        }
    }

    #[test]
    fn grouping_by_sni() {
        let cap = Capture {
            flows: vec![
                flow("a.com", Some("a.com")),
                flow("a.com", Some("a.com")),
                flow("b.com", Some("b.com")),
            ],
            window_secs: 30,
            faults: vec![],
        };
        let groups = cap.by_destination();
        assert_eq!(groups["a.com"].len(), 2);
        assert_eq!(groups["b.com"].len(), 1);
    }

    #[test]
    fn sni_less_flows_dropped_from_grouping() {
        let cap = Capture {
            flows: vec![flow("a.com", None)],
            window_secs: 30,
            faults: vec![],
        };
        assert!(cap.by_destination().is_empty());
        assert_eq!(cap.n_handshakes(), 1);
    }

    #[test]
    fn fault_accessors_summarize_the_journal() {
        let cap = Capture {
            flows: vec![],
            window_secs: 30,
            faults: vec![
                FaultEvent {
                    domain: Some("a.com".into()),
                    kind: FaultKind::Dns,
                    at_secs: 1,
                },
                FaultEvent {
                    domain: Some("a.com".into()),
                    kind: FaultKind::Dns,
                    at_secs: 2,
                },
                FaultEvent {
                    domain: Some("b.com".into()),
                    kind: FaultKind::TcpReset,
                    at_secs: 3,
                },
                FaultEvent {
                    domain: None,
                    kind: FaultKind::DeviceCrash,
                    at_secs: 9,
                },
            ],
        };
        assert!(cap.has_faults());
        let domains: Vec<&str> = cap.faulted_domains().into_iter().collect();
        assert_eq!(domains, vec!["a.com", "b.com"]);
        assert_eq!(cap.dominant_fault(), Some(FaultKind::Dns));
        assert_eq!(Capture::default().dominant_fault(), None);
    }
}
