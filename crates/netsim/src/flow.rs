//! Flow records and captures: the pipeline's raw material.

use pinning_tls::ConnectionTranscript;
use std::collections::BTreeMap;

/// Who initiated a flow.
///
/// Analysis code is only allowed to consult this through legitimate
/// channels: app flows vs OS flows are *not* distinguishable on the wire
/// (§4.5 — "the traffic from OS exhibits a similar TLS fingerprint as
/// regular app traffic"), so the pipeline must instead exclude known Apple
/// domains and entitlement-declared associated domains. The field exists
/// for ground-truth evaluation and the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowOrigin {
    /// Initiated by the app under test.
    App,
    /// iOS verifying the app's associated domains after install.
    OsAssociatedDomains,
    /// Always-on Apple background services.
    OsBackground,
}

/// One captured TCP+TLS connection.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    /// Destination hostname as *ground truth* (oracle only — the pipeline
    /// keys on the SNI inside the transcript).
    pub dest: String,
    /// Seconds after capture start at which the flow began.
    pub at_secs: u32,
    /// Who initiated the flow (oracle; see [`FlowOrigin`]).
    pub origin: FlowOrigin,
    /// Wire observables.
    pub transcript: ConnectionTranscript,
    /// Whether this run routed through the MITM proxy.
    pub mitm_attempted: bool,
    /// Request plaintext, available only when the proxy successfully
    /// intercepted (what §4.4's PII analysis reads).
    pub decrypted_request: Option<String>,
}

impl FlowRecord {
    /// The destination key the *pipeline* may use: the SNI, if present.
    pub fn sni(&self) -> Option<&str> {
        self.transcript.sni.as_deref()
    }
}

/// Everything captured during one app run.
#[derive(Debug, Clone, Default)]
pub struct Capture {
    /// Flows in start order.
    pub flows: Vec<FlowRecord>,
    /// Length of the capture window in seconds.
    pub window_secs: u32,
}

impl Capture {
    /// Groups flows by SNI destination. Flows without SNI are dropped, as
    /// in the paper (99% carry SNI; the rest can't be keyed).
    pub fn by_destination(&self) -> BTreeMap<&str, Vec<&FlowRecord>> {
        let mut map: BTreeMap<&str, Vec<&FlowRecord>> = BTreeMap::new();
        for f in &self.flows {
            if let Some(sni) = f.sni() {
                map.entry(sni).or_default().push(f);
            }
        }
        map
    }

    /// Number of TLS handshakes attempted (== flows, in this model).
    pub fn n_handshakes(&self) -> usize {
        self.flows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(dest: &str, sni: Option<&str>) -> FlowRecord {
        let mut t = ConnectionTranscript::new();
        t.sni = sni.map(str::to_string);
        FlowRecord {
            dest: dest.to_string(),
            at_secs: 0,
            origin: FlowOrigin::App,
            transcript: t,
            mitm_attempted: false,
            decrypted_request: None,
        }
    }

    #[test]
    fn grouping_by_sni() {
        let cap = Capture {
            flows: vec![flow("a.com", Some("a.com")), flow("a.com", Some("a.com")), flow("b.com", Some("b.com"))],
            window_secs: 30,
        };
        let groups = cap.by_destination();
        assert_eq!(groups["a.com"].len(), 2);
        assert_eq!(groups["b.com"].len(), 1);
    }

    #[test]
    fn sni_less_flows_dropped_from_grouping() {
        let cap = Capture { flows: vec![flow("a.com", None)], window_secs: 30 };
        assert!(cap.by_destination().is_empty());
        assert_eq!(cap.n_handshakes(), 1);
    }
}
