//! The device runtime: installs an app, launches it, and captures traffic.
//!
//! Mirrors the paper's §4.2.1 pipeline: one app at a time, a fixed capture
//! window (30 s by default; the 15/30/60 s calibration sweep is reproduced
//! in `pinning-analysis`), optional MITM interception, optional Frida
//! hooks, and — on iOS — the OS background traffic that §4.5 had to
//! engineer around.

use crate::breaker::{Admission, BreakerSet};
use crate::faults::{FaultKind, FaultPlan, RunAbort};
use crate::flow::{Capture, FaultEvent, FlowOrigin, FlowRecord};
use crate::network::Network;
use crate::proxy::MitmProxy;
use pinning_app::app::MobileApp;
use pinning_app::behavior::{Interaction, PlannedConnection};
use pinning_app::pii::DeviceIdentity;
use pinning_app::platform::Platform;
use pinning_crypto::SplitMix64;
use pinning_pki::store::RootStore;
use pinning_pki::time::SimTime;
use pinning_tls::record::{Direction, TcpEvent};
use pinning_tls::{
    establish, CertPolicy, CipherSuite, ClientConfig, ServerEndpoint, TlsLibrary, TlsVersion,
};

/// Configuration for one app run.
#[derive(Debug, Clone)]
pub struct RunConfig<'a> {
    /// Capture window after launch, seconds (paper default: 30).
    pub window_secs: u32,
    /// Wait between install and launch, seconds (0 normally; 120 in the
    /// paper's iOS re-run so associated-domain traffic settles, §4.5).
    pub settle_secs: u32,
    /// UI interaction mode.
    pub interaction: Interaction,
    /// Route through this MITM proxy (None = baseline non-MITM run).
    pub proxy: Option<&'a MitmProxy>,
    /// Attach Frida hooks that disable certificate checks in hookable TLS
    /// stacks (§4.3 circumvention runs).
    pub frida_disable_pinning: bool,
    /// Distinguishes randomness between repeated runs of the same app.
    /// Owned so callers can build attempt-specific tags without fighting
    /// the borrow checker.
    pub run_tag: String,
    /// Fault schedule applied to this run (`None` = no injection).
    pub faults: Option<&'a FaultPlan>,
    /// Per-endpoint circuit breakers shared across this app's runs
    /// (`None` = never short-circuit). Only injected faults feed them.
    pub breaker: Option<&'a BreakerSet>,
}

impl<'a> RunConfig<'a> {
    /// The baseline (non-MITM) configuration.
    pub fn baseline() -> Self {
        RunConfig {
            window_secs: 30,
            settle_secs: 0,
            interaction: Interaction::None,
            proxy: None,
            frida_disable_pinning: false,
            run_tag: "baseline".to_string(),
            faults: None,
            breaker: None,
        }
    }

    /// The interception configuration.
    pub fn mitm(proxy: &'a MitmProxy) -> Self {
        RunConfig {
            proxy: Some(proxy),
            run_tag: "mitm".to_string(),
            ..RunConfig::baseline()
        }
    }
}

/// A test device attached to the virtual network.
#[derive(Debug)]
pub struct Device<'a> {
    /// Platform of the device.
    pub platform: Platform,
    /// The network it reaches.
    pub network: &'a Network,
    /// Root store consulted by *apps* (factory store, plus the proxy CA
    /// once installed — the paper modified the system image / trust
    /// settings to do this).
    pub app_trust: RootStore,
    /// Root store consulted by *OS services* — never includes the proxy CA
    /// (why associated-domain verification "appears pinned", §4.5).
    pub os_trust: RootStore,
    /// The device/account identity whose PII apps may transmit.
    pub identity: DeviceIdentity,
    /// Wall-clock "now" used for certificate validity.
    pub now: SimTime,
    seed: u64,
}

impl<'a> Device<'a> {
    /// Creates a device with a factory root store.
    pub fn new(
        platform: Platform,
        network: &'a Network,
        factory_store: RootStore,
        identity: DeviceIdentity,
        now: SimTime,
        seed: u64,
    ) -> Self {
        Device {
            platform,
            network,
            app_trust: factory_store.clone(),
            os_trust: factory_store,
            identity,
            now,
            seed,
        }
    }

    /// Installs a CA certificate into the app-visible trust store (the
    /// mitmproxy setup step).
    pub fn install_ca(&mut self, cert: pinning_pki::Certificate) {
        self.app_trust.add(cert);
    }

    /// Installs, launches and captures one app run, panicking if an
    /// injected run-level fault aborts it.
    ///
    /// Callers that configure a fault plan should prefer
    /// [`Device::try_run_app`]; without one this never panics. Panics if
    /// the app targets the other platform (you can't sideload an IPA onto
    /// a Pixel).
    pub fn run_app(&self, app: &MobileApp, cfg: &RunConfig<'_>) -> Capture {
        self.try_run_app(app, cfg)
            .expect("run aborted by an injected fault; use try_run_app to handle aborts")
    }

    /// Installs, launches and captures one app run, surfacing run-level
    /// fault aborts (device crash, missing proxy CA) as errors.
    ///
    /// An aborted run yields *no* capture — the paper's crashed runs lost
    /// their pcaps wholesale. Per-connection faults do not abort; they are
    /// journaled in [`Capture::faults`].
    ///
    /// Panics if the app targets the other platform.
    pub fn try_run_app(&self, app: &MobileApp, cfg: &RunConfig<'_>) -> Result<Capture, RunAbort> {
        assert_eq!(
            app.id.platform, self.platform,
            "app platform must match device platform"
        );
        let run_key = format!("{}/{}", app.id, cfg.run_tag);
        if let Some(plan) = cfg.faults {
            if let Some(abort) = plan.run_abort(&run_key, cfg.proxy.is_some(), cfg.window_secs) {
                return Err(abort);
            }
        }

        let mut flows = Vec::new();
        let mut faults = Vec::new();
        let mut rng = SplitMix64::new(self.seed).derive(&format!("run/{run_key}"));

        if self.platform == Platform::Ios {
            self.emit_os_background(cfg, &mut rng, &mut flows);
            self.emit_associated_domain_checks(app, cfg, &mut rng, &mut flows);
        }

        for conn in app.behavior.within_window(cfg.window_secs, cfg.interaction) {
            self.run_connection(app, conn, cfg, &run_key, &mut rng, &mut flows, &mut faults);
        }

        flows.sort_by_key(|f| f.at_secs);
        Ok(Capture {
            flows,
            window_secs: cfg.window_secs,
            faults,
        })
    }

    /// Always-on Apple service traffic spanning the whole capture (§4.5).
    fn emit_os_background(
        &self,
        cfg: &RunConfig<'_>,
        rng: &mut SplitMix64,
        flows: &mut Vec<FlowRecord>,
    ) {
        for domain in crate::APPLE_BACKGROUND_DOMAINS {
            // A couple of beacons spread across the window.
            for at in [0u32, cfg.window_secs / 2] {
                self.emit_os_flow(domain, at, FlowOrigin::OsBackground, cfg, rng, flows);
            }
        }
    }

    /// Associated-domain verification fetches triggered by app install
    /// (§4.5). They land shortly after install; with a long enough settle
    /// wait they finish *before* the capture window opens.
    fn emit_associated_domain_checks(
        &self,
        app: &MobileApp,
        cfg: &RunConfig<'_>,
        rng: &mut SplitMix64,
        flows: &mut Vec<FlowRecord>,
    ) {
        // Fetches happen ~5–60 s after install; capture starts at
        // `settle_secs` after install.
        for domain in &app.associated_domains {
            let fetch_at = 5 + rng.next_below(55) as u32;
            let Some(at_in_window) = fetch_at.checked_sub(cfg.settle_secs) else {
                continue; // finished before the capture window opened
            };
            if at_in_window > cfg.window_secs {
                continue;
            }
            self.emit_os_flow(
                domain,
                at_in_window,
                FlowOrigin::OsAssociatedDomains,
                cfg,
                rng,
                flows,
            );
        }
    }

    fn emit_os_flow(
        &self,
        domain: &str,
        at_secs: u32,
        origin: FlowOrigin,
        cfg: &RunConfig<'_>,
        rng: &mut SplitMix64,
        flows: &mut Vec<FlowRecord>,
    ) {
        let Some(server) = self.network.resolve(domain) else {
            return;
        };
        let client = ClientConfig::modern(TlsLibrary::NsUrlSession);
        let chain = match cfg.proxy {
            Some(p) => p.forge_chain(domain, &server.chain),
            None => server.chain.clone(),
        };
        let endpoint = ServerEndpoint {
            chain: &chain,
            versions: server.versions.clone(),
            ciphers: server.ciphers.clone(),
        };
        // OS services validate against the OS store (no proxy CA).
        let mut out = establish(
            &client,
            &endpoint,
            domain,
            self.now,
            &self.os_trust,
            &self.network.crl,
        );
        if let Ok(session) = out.result {
            session.send_client_data(&mut out.transcript, 300 + rng.next_below(200) as usize);
            session.send_server_data(&mut out.transcript, server.response_bytes);
            session.close(&mut out.transcript);
        }
        flows.push(FlowRecord {
            dest: domain.to_string(),
            at_secs,
            origin,
            transcript: out.transcript,
            mitm_attempted: cfg.proxy.is_some(),
            decrypted_request: None, // OS flows never complete under MITM
        });
    }

    /// An injected per-connection fault, rendered onto the wire. Returns
    /// the flow to record, or `None` when the fault leaves no trace (DNS).
    fn render_fault(
        &self,
        kind: FaultKind,
        conn: &PlannedConnection,
        cfg: &RunConfig<'_>,
        attempt: u32,
    ) -> Option<FlowRecord> {
        let mut t = pinning_tls::ConnectionTranscript::new();
        t.sni = conn.sends_sni.then(|| conn.domain.clone());
        match kind {
            // Resolution failed: nothing reaches the capture.
            FaultKind::Dns => return None,
            // The network killed the session: server-side RST, nothing
            // negotiated — classifies as inconclusive, like server drops.
            FaultKind::TcpReset => {
                t.push_tcp(TcpEvent::Established);
                t.push_tcp(TcpEvent::Rst {
                    from: Direction::ServerToClient,
                });
            }
            // The handshake hung: an established session with no records
            // and no teardown before the window closed.
            FaultKind::HandshakeTimeout => {
                t.push_tcp(TcpEvent::Established);
            }
            // Cut mid-stream before application data completed: the
            // client side shows a bare FIN.
            FaultKind::Truncation => {
                t.push_tcp(TcpEvent::Established);
                t.push_tcp(TcpEvent::Fin {
                    from: Direction::ClientToServer,
                });
            }
            // Run-level faults never reach per-connection rendering.
            FaultKind::ProxyCaUnavailable | FaultKind::DeviceCrash => unreachable!(),
        }
        Some(FlowRecord {
            dest: conn.domain.clone(),
            at_secs: conn.at_secs + attempt,
            origin: FlowOrigin::App,
            transcript: t,
            mitm_attempted: cfg.proxy.is_some(),
            decrypted_request: None,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_connection(
        &self,
        app: &MobileApp,
        conn: &PlannedConnection,
        cfg: &RunConfig<'_>,
        run_key: &str,
        rng: &mut SplitMix64,
        flows: &mut Vec<FlowRecord>,
        faults: &mut Vec<FaultEvent>,
    ) {
        let Some(server) = self.network.resolve(&conn.domain) else {
            return;
        };

        // Resolve the certificate policy this connection runs with.
        let active_rule = conn
            .pin_rule
            .and_then(|i| app.pin_rules.get(i))
            .filter(|r| r.active_at_runtime);
        let hooked = cfg.frida_disable_pinning && conn.library.frida_hookable();
        let policy = if hooked {
            // Frida hooks neuter certificate evaluation wholesale.
            CertPolicy {
                system_validation: false,
                validation_options: Default::default(),
                pins: None,
            }
        } else {
            match active_rule {
                Some(rule) => CertPolicy {
                    system_validation: !rule.custom_pki,
                    validation_options: Default::default(),
                    pins: Some(rule.pins.clone()),
                },
                None => CertPolicy::system_default(),
            }
        };

        let client = ClientConfig {
            offered_versions: vec![TlsVersion::V1_2, TlsVersion::V1_3],
            offered_ciphers: if conn.offers_weak_ciphers {
                CipherSuite::legacy_client_list()
            } else {
                CipherSuite::modern_client_list()
            },
            send_sni: conn.sends_sni,
            library: conn.library,
            policy,
        };

        let attempts = if cfg.proxy.is_some() { 2 } else { 1 };
        for attempt in 0..attempts {
            // An open circuit breaker short-circuits the attempt before any
            // packets move: journal the fault kind that tripped it so the
            // detector treats the destination as unobserved, same as a live
            // injected fault would.
            if let Some(b) = cfg.breaker {
                if let Admission::Skip(kind) = b.admit(&conn.domain) {
                    faults.push(FaultEvent {
                        domain: Some(conn.domain.clone()),
                        kind,
                        at_secs: conn.at_secs + attempt,
                    });
                    continue;
                }
            }

            // Injected test-bed faults take precedence over everything the
            // endpoints would do: the packets never make it that far.
            if let Some(kind) = cfg
                .faults
                .and_then(|p| p.connection_fault(run_key, &conn.domain, attempt))
            {
                if let Some(b) = cfg.breaker {
                    b.record_fault(&conn.domain, kind);
                }
                faults.push(FaultEvent {
                    domain: Some(conn.domain.clone()),
                    kind,
                    at_secs: conn.at_secs + attempt,
                });
                if let Some(flow) = self.render_fault(kind, conn, cfg, attempt) {
                    flows.push(flow);
                }
                continue; // the app retries, like any failed attempt
            }

            // No injected fault on this attempt: the breaker sees it as a
            // success regardless of what the endpoint does next, keeping
            // breaker state a pure function of the injected-fault sequence.
            if let Some(b) = cfg.breaker {
                b.record_success(&conn.domain);
            }

            // Server-side flakiness: a dropped attempt shows a server RST.
            if !rng.chance(server.reliability) {
                let mut t = pinning_tls::ConnectionTranscript::new();
                t.sni = conn.sends_sni.then(|| conn.domain.clone());
                t.push_tcp(TcpEvent::Established);
                t.push_tcp(TcpEvent::Rst {
                    from: Direction::ServerToClient,
                });
                flows.push(FlowRecord {
                    dest: conn.domain.clone(),
                    at_secs: conn.at_secs,
                    origin: FlowOrigin::App,
                    transcript: t,
                    mitm_attempted: cfg.proxy.is_some(),
                    decrypted_request: None,
                });
                continue;
            }

            let chain = match cfg.proxy {
                Some(p) => p.forge_chain(&conn.domain, &server.chain),
                None => server.chain.clone(),
            };
            let endpoint = ServerEndpoint {
                chain: &chain,
                versions: server.versions.clone(),
                ciphers: server.ciphers.clone(),
            };
            let mut out = establish(
                &client,
                &endpoint,
                &conn.domain,
                self.now,
                &self.app_trust,
                &self.network.crl,
            );

            let mut decrypted = None;
            match out.result {
                Ok(session) => {
                    if conn.redundant {
                        session.close(&mut out.transcript);
                    } else {
                        let payload = self
                            .identity
                            .render_payload(&conn.pii, rng.next_u64() & 0xffff_ffff);
                        let body_len = payload.len() + conn.extra_bytes;
                        session.send_client_data(&mut out.transcript, body_len);
                        session.send_server_data(&mut out.transcript, server.response_bytes);
                        session.close(&mut out.transcript);
                        if cfg.proxy.is_some() {
                            // Interception succeeded: the proxy sees plaintext.
                            decrypted = Some(payload);
                        }
                    }
                    flows.push(FlowRecord {
                        dest: conn.domain.clone(),
                        at_secs: conn.at_secs + attempt,
                        origin: FlowOrigin::App,
                        transcript: out.transcript,
                        mitm_attempted: cfg.proxy.is_some(),
                        decrypted_request: decrypted,
                    });
                    break; // success: no retry
                }
                Err(_) => {
                    flows.push(FlowRecord {
                        dest: conn.domain.clone(),
                        at_secs: conn.at_secs + attempt,
                        origin: FlowOrigin::App,
                        transcript: out.transcript,
                        mitm_attempted: cfg.proxy.is_some(),
                        decrypted_request: None,
                    });
                    // Failure under MITM: the app retries once (the retry
                    // noise §4.5 observed), then gives up.
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::OriginServer;
    use pinning_app::app::MobileApp;
    use pinning_app::behavior::AppBehavior;
    use pinning_app::category::Category;
    use pinning_app::package::AppPackage;
    use pinning_app::pinning::{DomainPinRule, PinSource, PinStorage, PinTarget};
    use pinning_app::platform::AppId;
    use pinning_crypto::sig::KeyPair;
    use pinning_pki::pin::PinAlgorithm;
    use pinning_pki::universe::{PkiUniverse, UniverseConfig};

    struct World {
        network: Network,
        universe: PkiUniverse,
        proxy: MitmProxy,
        factory: RootStore,
    }

    fn world() -> World {
        let mut rng = SplitMix64::new(0xd0);
        let mut universe = PkiUniverse::generate(&UniverseConfig::tiny(), &mut rng);
        let mut network = Network::new();
        for host in ["api.shop.com", "pins.shop.com", "tracker.ads.com"] {
            let key = KeyPair::generate(&mut rng);
            let chain = universe.issue_server_chain_via(0, &[host.to_string()], "Org", &key, 398);
            network.register(OriginServer::modern(
                vec![host.to_string()],
                "Org".into(),
                chain,
            ));
        }
        let proxy = MitmProxy::new(&mut rng, universe.now());
        let factory = universe.aosp.clone();
        World {
            network,
            universe,
            proxy,
            factory,
        }
    }

    fn test_app(w: &World) -> MobileApp {
        let pinned_chain = w.network.resolve("pins.shop.com").unwrap().chain.clone();
        let rule = DomainPinRule::spki(
            "pins.shop.com",
            pinned_chain.top().unwrap(), // pin the root (CA pin)
            PinTarget::Root,
            PinAlgorithm::Sha256,
            PinStorage::SpkiStringInCode(PinAlgorithm::Sha256),
            PinSource::FirstParty,
        );
        let mut plain =
            pinning_app::behavior::PlannedConnection::simple("api.shop.com", TlsLibrary::OkHttp);
        plain.pii = vec![pinning_app::pii::PiiType::AdvertisingId];
        let mut pinned =
            pinning_app::behavior::PlannedConnection::simple("pins.shop.com", TlsLibrary::OkHttp);
        pinned.pin_rule = Some(0);
        let mut ads = pinning_app::behavior::PlannedConnection::simple(
            "tracker.ads.com",
            TlsLibrary::Conscrypt,
        );
        ads.redundant = true;
        MobileApp {
            id: AppId::new(Platform::Android, "com.shop.app"),
            product_key: "shop".into(),
            name: "Shop".into(),
            developer_org: "Shop Inc".into(),
            category: Category::Shopping,
            popularity_rank: 1,
            sdk_names: vec![],
            pin_rules: vec![rule],
            first_party_domains: vec!["api.shop.com".into(), "pins.shop.com".into()],
            associated_domains: vec![],
            uses_nsc: false,
            behavior: AppBehavior {
                connections: vec![plain, pinned, ads],
            },
            package: AppPackage::new(Platform::Android, vec![]),
        }
    }

    fn device<'a>(w: &'a World, with_ca: bool) -> Device<'a> {
        let mut rng = SplitMix64::new(0xd1);
        let mut d = Device::new(
            Platform::Android,
            &w.network,
            w.factory.clone(),
            DeviceIdentity::generate(&mut rng),
            w.universe.now(),
            42,
        );
        if with_ca {
            d.install_ca(w.proxy.ca_cert());
        }
        d
    }

    #[test]
    fn baseline_run_all_connections_succeed() {
        let w = world();
        let app = test_app(&w);
        let d = device(&w, true);
        let cap = d.run_app(&app, &RunConfig::baseline());
        assert_eq!(cap.flows.len(), 3);
        // Pinned destination succeeds against the genuine chain.
        let pinned_flow = cap
            .flows
            .iter()
            .find(|f| f.dest == "pins.shop.com")
            .unwrap();
        assert!(pinned_flow.transcript.client_appdata_bytes() > 0);
        // No plaintext without MITM.
        assert!(cap.flows.iter().all(|f| f.decrypted_request.is_none()));
    }

    #[test]
    fn mitm_run_splits_pinned_from_unpinned() {
        let w = world();
        let app = test_app(&w);
        let d = device(&w, true);
        let cap = d.run_app(&app, &RunConfig::mitm(&w.proxy));
        // Unpinned destination intercepted: plaintext visible, incl. the Ad ID.
        let api = cap.flows.iter().find(|f| f.dest == "api.shop.com").unwrap();
        let body = api.decrypted_request.as_ref().unwrap();
        assert!(body.contains("adid="));
        // Pinned destination fails (and is retried once).
        let pinned: Vec<_> = cap
            .flows
            .iter()
            .filter(|f| f.dest == "pins.shop.com")
            .collect();
        assert_eq!(pinned.len(), 2, "failure + one retry");
        assert!(pinned.iter().all(|f| f.decrypted_request.is_none()));
        assert!(
            pinned.iter().all(|f| f.transcript.client_rst()),
            "OkHttp pin failure → RST"
        );
    }

    #[test]
    fn frida_hooks_open_pinned_connections() {
        let w = world();
        let app = test_app(&w);
        let d = device(&w, true);
        let mut cfg = RunConfig::mitm(&w.proxy);
        cfg.frida_disable_pinning = true;
        cfg.run_tag = "mitm+frida".to_string();
        let cap = d.run_app(&app, &cfg);
        let pinned = cap
            .flows
            .iter()
            .find(|f| f.dest == "pins.shop.com")
            .unwrap();
        assert!(
            pinned.decrypted_request.is_some(),
            "hooked stack accepts the forged chain"
        );
    }

    #[test]
    fn unhookable_stack_resists_frida() {
        let w = world();
        let mut app = test_app(&w);
        // Switch the pinned connection to a custom native stack.
        app.behavior.connections[1].library = TlsLibrary::CustomNative;
        let d = device(&w, true);
        let mut cfg = RunConfig::mitm(&w.proxy);
        cfg.frida_disable_pinning = true;
        let cap = d.run_app(&app, &cfg);
        let pinned: Vec<_> = cap
            .flows
            .iter()
            .filter(|f| f.dest == "pins.shop.com")
            .collect();
        assert!(pinned.iter().all(|f| f.decrypted_request.is_none()));
    }

    #[test]
    fn without_installed_ca_everything_fails_under_mitm() {
        let w = world();
        let app = test_app(&w);
        let d = device(&w, false); // proxy CA NOT installed
        let cap = d.run_app(&app, &RunConfig::mitm(&w.proxy));
        assert!(cap.flows.iter().all(|f| f.decrypted_request.is_none()));
    }

    #[test]
    fn redundant_connection_shows_no_appdata() {
        let w = world();
        let app = test_app(&w);
        let d = device(&w, true);
        let cap = d.run_app(&app, &RunConfig::baseline());
        let ads = cap
            .flows
            .iter()
            .find(|f| f.dest == "tracker.ads.com")
            .unwrap();
        // TLS 1.3 shows only the disguised Finished + close alert; the paper's
        // ">2 packets" heuristic must not count this as used.
        assert!(ads.transcript.client_appdata_bytes() < 100);
    }

    #[test]
    fn window_excludes_late_connections() {
        let w = world();
        let mut app = test_app(&w);
        app.behavior.connections[0].at_secs = 50; // beyond the 30 s window
        let d = device(&w, true);
        let cap = d.run_app(&app, &RunConfig::baseline());
        assert!(cap.flows.iter().all(|f| f.dest != "api.shop.com"));
    }

    #[test]
    fn connection_faults_are_journaled_and_keep_the_run_alive() {
        use crate::faults::{FaultConfig, FaultPlan};
        let w = world();
        let app = test_app(&w);
        let d = device(&w, true);
        // Every connection attempt fails DNS: no app flows, all journaled.
        let plan = FaultPlan::new(
            5,
            FaultConfig {
                dns_failure: 1.0,
                ..FaultConfig::none()
            },
        );
        let mut cfg = RunConfig::baseline();
        cfg.faults = Some(&plan);
        let cap = d
            .try_run_app(&app, &cfg)
            .expect("no run-level fault configured");
        assert!(
            cap.flows.is_empty(),
            "DNS faults leave no trace on the wire"
        );
        assert_eq!(
            cap.faults.len(),
            3,
            "one journal entry per planned connection"
        );
        assert!(cap.faults.iter().all(|f| f.kind == FaultKind::Dns));
        let domains = cap.faulted_domains();
        assert!(domains.contains("pins.shop.com"));
    }

    #[test]
    fn device_crash_aborts_the_whole_run() {
        use crate::faults::{FaultConfig, FaultPlan};
        let w = world();
        let app = test_app(&w);
        let d = device(&w, true);
        let plan = FaultPlan::new(
            5,
            FaultConfig {
                device_crash: 1.0,
                ..FaultConfig::none()
            },
        );
        let mut cfg = RunConfig::baseline();
        cfg.faults = Some(&plan);
        match d.try_run_app(&app, &cfg) {
            Err(RunAbort::DeviceCrash { at_secs }) => assert!(at_secs < cfg.window_secs),
            other => panic!("crash rate 1.0 must abort, got {other:?}"),
        }
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        use crate::faults::{FaultConfig, FaultPlan};
        let w = world();
        let app = test_app(&w);
        let d = device(&w, true);
        let plan = FaultPlan::new(11, FaultConfig::uniform(0.3));
        let mut cfg = RunConfig::mitm(&w.proxy);
        cfg.faults = Some(&plan);
        let a = d.try_run_app(&app, &cfg);
        let b = d.try_run_app(&app, &cfg);
        match (a, b) {
            (Ok(ca), Ok(cb)) => {
                assert_eq!(ca.faults, cb.faults);
                assert_eq!(ca.flows.len(), cb.flows.len());
            }
            (Err(ea), Err(eb)) => assert_eq!(ea, eb),
            other => panic!("replay diverged: {other:?}"),
        }
    }

    #[test]
    fn disabled_plan_changes_nothing() {
        use crate::faults::FaultPlan;
        let w = world();
        let app = test_app(&w);
        let d = device(&w, true);
        let plan = FaultPlan::disabled();
        let mut with = RunConfig::baseline();
        with.faults = Some(&plan);
        let faulted = d.try_run_app(&app, &with).unwrap();
        let clean = d.run_app(&app, &RunConfig::baseline());
        assert!(faulted.faults.is_empty());
        assert_eq!(faulted.flows.len(), clean.flows.len());
    }
}
