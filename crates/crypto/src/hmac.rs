//! HMAC (RFC 2104) over the crate's SHA-1 and SHA-256.
//!
//! HMAC backs the simulated signature scheme in [`crate::sig`]; it is also
//! exposed directly because the TLS simulator derives its per-connection
//! "encryption" keystream identifiers from HMAC outputs.

use crate::sha1::Sha1;
use crate::sha256::Sha256;

const BLOCK_LEN: usize = 64; // both SHA-1 and SHA-256 use 64-byte blocks

fn normalize_key_sha256(key: &[u8]) -> [u8; BLOCK_LEN] {
    let mut k = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let d = crate::sha256::sha256(key);
        k[..32].copy_from_slice(&d);
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    k
}

fn normalize_key_sha1(key: &[u8]) -> [u8; BLOCK_LEN] {
    let mut k = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let d = crate::sha1::sha1(key);
        k[..20].copy_from_slice(&d);
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    k
}

/// HMAC-SHA-256 of `msg` under `key`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; 32] {
    let k = normalize_key_sha256(key);
    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// HMAC-SHA-1 of `msg` under `key`.
pub fn hmac_sha1(key: &[u8], msg: &[u8]) -> [u8; 20] {
    let k = normalize_key_sha1(key);
    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= k[i];
        opad[i] ^= k[i];
    }
    let mut inner = Sha1::new();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();
    let mut outer = Sha1::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::hex_encode;

    // RFC 4231 test vectors for HMAC-SHA-256; RFC 2202 for HMAC-SHA-1.

    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let out = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex_encode(&out),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2_jefe() {
        let out = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex_encode(&out),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3_ff_bytes() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let out = hmac_sha256(&key, &msg);
        assert_eq!(
            hex_encode(&out),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        let key = [0xaau8; 131];
        let out = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex_encode(&out),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc2202_sha1_case1() {
        let key = [0x0bu8; 20];
        let out = hmac_sha1(&key, b"Hi There");
        assert_eq!(hex_encode(&out), "b617318655057264e28bc0b6fb378c8ef146be00");
    }

    #[test]
    fn rfc2202_sha1_jefe() {
        let out = hmac_sha1(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex_encode(&out), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
    }

    #[test]
    fn key_sensitivity() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }
}
