//! Deterministic sub-seeding.
//!
//! The study must be exactly reproducible from a single seed (DESIGN.md §6).
//! [`SplitMix64`] is the standard 64-bit mixing generator used to derive
//! independent per-entity streams (per app, per domain, per connection)
//! without threading one mutable RNG through the whole simulation. It is
//! the only randomness source in the workspace — sampling helpers such as
//! [`SplitMix64::shuffle`] keep dataset construction free of external
//! crates so the build works fully offline.

/// SplitMix64 generator (Steele, Lea & Flood 2014).
///
/// ```
/// use pinning_crypto::rng::SplitMix64;
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives a child generator from this one plus a domain-separation tag.
    ///
    /// Children with distinct tags produce independent-looking streams, so a
    /// single study seed can fan out to every entity in the simulation.
    pub fn derive(&self, tag: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325; // FNV-1a offset basis
        for &b in tag.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut child = SplitMix64::new(self.state ^ h);
        // One warm-up step so `derive(x).next_u64()` differs from `state ^ h`.
        child.next_u64();
        child
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping (slight bias is irrelevant
        // for simulation purposes, bounds here are tiny vs 2^64).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher–Yates shuffle of a slice, consuming `len - 1` draws.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sequence() {
        // Reference outputs for seed 0 from the original splitmix64.c.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(g.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(g.next_u64(), 0x06c45d188009454f);
    }

    #[test]
    fn derive_is_deterministic_and_tag_sensitive() {
        let root = SplitMix64::new(42);
        let mut a1 = root.derive("apps");
        let mut a2 = root.derive("apps");
        let mut b = root.derive("domains");
        let x = a1.next_u64();
        assert_eq!(x, a2.next_u64());
        assert_ne!(x, b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut g = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(g.next_below(13) < 13);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut g = SplitMix64::new(9);
        for _ in 0..1000 {
            let v = g.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut g = SplitMix64::new(3);
        assert!(!g.chance(0.0));
        assert!(g.chance(1.0));
    }

    #[test]
    fn chance_rate_roughly_matches_p() {
        let mut g = SplitMix64::new(11);
        let hits = (0..10_000).filter(|_| g.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = SplitMix64::new(21);
        let mut xs: Vec<u32> = (0..50).collect();
        g.shuffle(&mut xs);
        assert_ne!(xs, (0..50).collect::<Vec<u32>>(), "50 elements should move");
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn shuffle_handles_degenerate_slices() {
        let mut g = SplitMix64::new(22);
        let mut empty: [u8; 0] = [];
        g.shuffle(&mut empty);
        let mut one = [7u8];
        g.shuffle(&mut one);
        assert_eq!(one, [7]);
    }

    #[test]
    fn fill_bytes_varies() {
        let mut g = SplitMix64::new(5);
        let mut a = [0u8; 17];
        let mut b = [0u8; 17];
        g.fill_bytes(&mut a);
        g.fill_bytes(&mut b);
        assert_ne!(a, b);
    }
}
