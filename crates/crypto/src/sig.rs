//! Simulated public-key signatures.
//!
//! The paper's methodology never exercises the *mathematics* of RSA/ECDSA —
//! it exercises the *structure* of certificate chains: who signed what, which
//! SubjectPublicKeyInfo hashes to which pin, whether a chain roots in a
//! public store. We therefore model a keypair as:
//!
//! * a 32-byte secret (random),
//! * a public key whose wire form (the simulated SPKI) is
//!   `sha256("spki" || secret)` — stable, unique per key, hashable into pins,
//! * a signature over `msg` equal to `hmac_sha256(secret, msg)`.
//!
//! Verification inside the closed simulation recomputes
//! `hmac_sha256(secret_of(public), msg)` via a *verification token* carried
//! with the public key: `verifier = sha256("verify" || secret)`, and
//! signatures are actually `hmac_sha256(verifier, msg)`. Anyone holding the
//! public key material (which includes the verifier) can verify; only the
//! holder of the secret can *mint new* verifiers for fresh keys, but within
//! one key, signing and verifying use the same token — i.e. this is a MAC
//! dressed as a signature. That is sound **for this simulation** because no
//! simulated adversary ever tries to forge; the MITM proxy signs with its own
//! CA key, exactly like real mitmproxy does.

use crate::hmac::hmac_sha256;
use crate::rng::SplitMix64;
use crate::sha256::sha256;

/// Public half of a simulated keypair.
///
/// `spki` plays the role of the DER SubjectPublicKeyInfo: it is the byte
/// string that pinning implementations hash (`sha256/<b64(sha256(spki))>`)
/// and that certificates embed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PublicKey {
    /// Simulated SubjectPublicKeyInfo bytes (32 bytes).
    pub spki: [u8; 32],
    /// Verification token (see module docs).
    pub verifier: [u8; 32],
}

impl PublicKey {
    /// SHA-256 of the SPKI — the value a `sha256/...` pin commits to.
    pub fn spki_sha256(&self) -> [u8; 32] {
        sha256(&self.spki)
    }

    /// SHA-1 of the SPKI — the value a legacy `sha1/...` pin commits to.
    pub fn spki_sha1(&self) -> [u8; 20] {
        crate::sha1::sha1(&self.spki)
    }

    /// Verifies `sig` over `msg`.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        // Constant-time comparison is irrelevant in simulation, but cheap.
        let expect = hmac_sha256(&self.verifier, msg);
        let mut diff = 0u8;
        for (a, b) in expect.iter().zip(sig.0.iter()) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

/// A detached signature (32 bytes).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Signature(pub [u8; 32]);

/// A simulated keypair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPair {
    secret: [u8; 32],
    /// Public half; freely cloneable into certificates.
    pub public: PublicKey,
}

impl KeyPair {
    /// Deterministically generates a keypair from an RNG stream.
    pub fn generate(rng: &mut SplitMix64) -> Self {
        let mut secret = [0u8; 32];
        rng.fill_bytes(&mut secret);
        Self::from_secret(secret)
    }

    /// Builds the keypair derived from a fixed secret (test helper, also used
    /// to give well-known infrastructure keys stable identities).
    pub fn from_secret(secret: [u8; 32]) -> Self {
        let mut spki_input = Vec::with_capacity(4 + 32);
        spki_input.extend_from_slice(b"spki");
        spki_input.extend_from_slice(&secret);
        let spki = sha256(&spki_input);

        let mut ver_input = Vec::with_capacity(6 + 32);
        ver_input.extend_from_slice(b"verify");
        ver_input.extend_from_slice(&secret);
        let verifier = sha256(&ver_input);

        KeyPair {
            secret,
            public: PublicKey { spki, verifier },
        }
    }

    /// Signs `msg`.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        Signature(hmac_sha256(&self.public.verifier, msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kp(seed: u64) -> KeyPair {
        KeyPair::generate(&mut SplitMix64::new(seed))
    }

    #[test]
    fn sign_verify_roundtrip() {
        let k = kp(1);
        let sig = k.sign(b"certificate tbs bytes");
        assert!(k.public.verify(b"certificate tbs bytes", &sig));
    }

    #[test]
    fn verify_rejects_tampered_message() {
        let k = kp(2);
        let sig = k.sign(b"original");
        assert!(!k.public.verify(b"tampered", &sig));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let a = kp(3);
        let b = kp(4);
        let sig = a.sign(b"msg");
        assert!(!b.public.verify(b"msg", &sig));
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        assert_ne!(kp(5).public.spki, kp(6).public.spki);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(kp(7), kp(7));
    }

    #[test]
    fn spki_hashes_are_stable() {
        let k = kp(8);
        assert_eq!(k.public.spki_sha256(), k.public.spki_sha256());
        assert_eq!(k.public.spki_sha1(), k.public.spki_sha1());
        assert_ne!(&k.public.spki_sha256()[..20], &k.public.spki_sha1()[..]);
    }
}
