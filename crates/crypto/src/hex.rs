//! Lowercase hex codec.
//!
//! Certificate fingerprints and some pinning implementations (notably a few
//! Android NSC files in the wild) store digests hex-encoded; the paper's
//! scanner pattern `{28,64}` deliberately spans both base64 (28/44 chars)
//! and hex (40/64 chars) digest encodings.

/// Encodes `data` as lowercase hex.
pub fn hex_encode(data: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(data.len() * 2);
    for &b in data {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0xf) as usize] as char);
    }
    out
}

/// Error returned by [`hex_decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HexError {
    /// Odd number of input characters.
    OddLength,
    /// Non-hex character.
    BadChar(char),
    /// Input exceeds the caller-supplied byte cap (see [`hex_decode_bounded`]).
    TooLong {
        /// Input length in bytes.
        len: usize,
        /// The cap that was exceeded.
        cap: usize,
    },
}

impl core::fmt::Display for HexError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HexError::OddLength => write!(f, "hex input has odd length"),
            HexError::BadChar(c) => write!(f, "invalid hex character {c:?}"),
            HexError::TooLong { len, cap } => {
                write!(f, "hex input of {len} bytes exceeds cap of {cap}")
            }
        }
    }
}

impl std::error::Error for HexError {}

fn nibble(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

/// Decodes hex (case-insensitive).
pub fn hex_decode(s: &str) -> Result<Vec<u8>, HexError> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(HexError::OddLength);
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks(2) {
        let hi = nibble(pair[0]).ok_or(HexError::BadChar(pair[0] as char))?;
        let lo = nibble(pair[1]).ok_or(HexError::BadChar(pair[1] as char))?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

/// Decodes hex after rejecting inputs longer than `max_input_bytes` — the
/// hostile-input entry point used wherever the input length is
/// attacker-influenced.
pub fn hex_decode_bounded(s: &str, max_input_bytes: usize) -> Result<Vec<u8>, HexError> {
    if s.len() > max_input_bytes {
        return Err(HexError::TooLong {
            len: s.len(),
            cap: max_input_bytes,
        });
    }
    hex_decode(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = [0u8, 1, 2, 0x7f, 0x80, 0xff];
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
    }

    #[test]
    fn empty() {
        assert_eq!(hex_encode(&[]), "");
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn case_insensitive_decode() {
        assert_eq!(hex_decode("DEADbeef").unwrap(), [0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn rejects_odd() {
        assert_eq!(hex_decode("abc"), Err(HexError::OddLength));
    }

    #[test]
    fn rejects_bad_char() {
        assert_eq!(hex_decode("zz"), Err(HexError::BadChar('z')));
    }

    #[test]
    fn bounded_decode_rejects_oversized_input() {
        assert_eq!(
            hex_decode_bounded("deadbeef", 4),
            Err(HexError::TooLong { len: 8, cap: 4 })
        );
        assert_eq!(hex_decode_bounded("beef", 4).unwrap(), [0xbe, 0xef]);
    }
}
