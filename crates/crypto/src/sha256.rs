//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! Used for SPKI pins (`sha256/<base64>`), certificate fingerprints, and the
//! simulated signature scheme. The implementation is a straightforward
//! streaming Merkle–Damgård construction; it favours clarity over speed but
//! still hashes the whole simulated ecosystem in well under a second.

/// Streaming SHA-256 hasher.
///
/// ```
/// use pinning_crypto::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// assert_eq!(
///     pinning_crypto::hex::hex_encode(&h.finalize()),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
/// );
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Rewinds the hasher to its initial state so the allocationless struct
    /// can be reused across a batch of independent messages.
    pub fn reset(&mut self) {
        self.state = H0;
        self.len = 0;
        self.buf_len = 0;
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        // Fill any partial block first.
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        // Whole blocks are compressed straight from the input slice; only the
        // partial head/tail ever touches `buf`.
        let mut blocks = data.chunks_exact(64);
        for block in &mut blocks {
            self.compress(block.try_into().expect("chunks_exact yields 64 bytes"));
        }
        data = blocks.remainder();
        // Stash the tail.
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // `update` would double-count the length bytes, so compress manually.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        compress1(&mut self.state, block);
    }
}

fn compress1(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for i in 0..16 {
        w[i] = u32::from_be_bytes([
            block[i * 4],
            block[i * 4 + 1],
            block[i * 4 + 2],
            block[i * 4 + 3],
        ]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ ((!e) & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Lanes in the interleaved multi-buffer compressor.
const LANES: usize = 4;

/// A 4-lane u32 vector: one word from each of four independent hash
/// states. Every helper is an elementwise map, which LLVM lowers to
/// 4×32-bit SIMD (SSE2 is the x86-64 baseline); without vectorization the
/// four independent dependency chains still fill the ALU slots a single
/// SHA-256 chain leaves idle.
#[derive(Clone, Copy)]
struct V4([u32; LANES]);

impl V4 {
    const ZERO: V4 = V4([0; LANES]);

    #[inline(always)]
    fn splat(x: u32) -> V4 {
        V4([x; LANES])
    }

    #[inline(always)]
    fn add(self, o: V4) -> V4 {
        V4(std::array::from_fn(|l| self.0[l].wrapping_add(o.0[l])))
    }

    #[inline(always)]
    fn xor(self, o: V4) -> V4 {
        V4(std::array::from_fn(|l| self.0[l] ^ o.0[l]))
    }

    #[inline(always)]
    fn and(self, o: V4) -> V4 {
        V4(std::array::from_fn(|l| self.0[l] & o.0[l]))
    }

    #[inline(always)]
    fn andnot(self, o: V4) -> V4 {
        V4(std::array::from_fn(|l| !self.0[l] & o.0[l]))
    }

    #[inline(always)]
    fn rotr(self, n: u32) -> V4 {
        V4(std::array::from_fn(|l| self.0[l].rotate_right(n)))
    }

    #[inline(always)]
    fn shr(self, n: u32) -> V4 {
        V4(std::array::from_fn(|l| self.0[l] >> n))
    }
}

/// One SHA-256 compression over four independent states at once.
fn compress4(states: &mut [[u32; 8]; LANES], blocks: &[[u8; 64]; LANES]) {
    let mut w = [V4::ZERO; 64];
    for (i, wi) in w.iter_mut().take(16).enumerate() {
        let mut r = [0u32; LANES];
        for l in 0..LANES {
            let b = &blocks[l];
            r[l] = u32::from_be_bytes([b[i * 4], b[i * 4 + 1], b[i * 4 + 2], b[i * 4 + 3]]);
        }
        *wi = V4(r);
    }
    for i in 16..64 {
        let w15 = w[i - 15];
        let w2 = w[i - 2];
        let s0 = w15.rotr(7).xor(w15.rotr(18)).xor(w15.shr(3));
        let s1 = w2.rotr(17).xor(w2.rotr(19)).xor(w2.shr(10));
        w[i] = w[i - 16].add(s0).add(w[i - 7]).add(s1);
    }

    let mut v = [V4::ZERO; 8];
    for (j, var) in v.iter_mut().enumerate() {
        let mut r = [0u32; LANES];
        for l in 0..LANES {
            r[l] = states[l][j];
        }
        *var = V4(r);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = v;
    for i in 0..64 {
        let s1 = e.rotr(6).xor(e.rotr(11)).xor(e.rotr(25));
        let ch = e.and(f).xor(e.andnot(g));
        let t1 = h.add(s1).add(ch).add(V4::splat(K[i])).add(w[i]);
        let s0 = a.rotr(2).xor(a.rotr(13)).xor(a.rotr(22));
        let maj = a.and(b).xor(a.and(c)).xor(b.and(c));
        let t2 = s0.add(maj);
        h = g;
        g = f;
        f = e;
        e = d.add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.add(t2);
    }

    for (j, var) in [a, b, c, d, e, f, g, h].iter().enumerate() {
        for (l, state) in states.iter_mut().enumerate() {
            state[j] = state[j].wrapping_add(var.0[l]);
        }
    }
}

/// Number of 64-byte blocks in the padded form of an `len`-byte message.
fn n_padded_blocks(len: usize) -> usize {
    len / 64 + if len % 64 >= 56 { 2 } else { 1 }
}

/// Materializes block `k` of the padded message (message bytes, then the
/// 0x80 marker, zeros, and the big-endian bit length in the final block).
fn fill_padded_block(msg: &[u8], k: usize, total: usize, out: &mut [u8; 64]) {
    let off = k * 64;
    let len = msg.len();
    *out = [0u8; 64];
    if off < len {
        let n = (len - off).min(64);
        out[..n].copy_from_slice(&msg[off..off + n]);
    }
    if (off..off + 64).contains(&len) {
        out[len - off] = 0x80;
    }
    if k + 1 == total {
        out[56..].copy_from_slice(&((len as u64).wrapping_mul(8)).to_be_bytes());
    }
}

/// Hashes four messages with the interleaved compressor: lanes advance in
/// lockstep while every lane still has a padded block left (the common
/// batch shape — near-equal lengths — stays 4-wide end to end), then the
/// longer lanes finish on the scalar path.
fn sha256x4(msgs: [&[u8]; LANES]) -> [[u8; 32]; LANES] {
    let totals = msgs.map(|m| n_padded_blocks(m.len()));
    let lockstep = *totals.iter().min().expect("LANES > 0");
    let mut states = [H0; LANES];
    let mut bufs = [[0u8; 64]; LANES];
    for k in 0..lockstep {
        for l in 0..LANES {
            fill_padded_block(msgs[l], k, totals[l], &mut bufs[l]);
        }
        compress4(&mut states, &bufs);
    }
    for l in 0..LANES {
        for k in lockstep..totals[l] {
            fill_padded_block(msgs[l], k, totals[l], &mut bufs[l]);
            compress1(&mut states[l], &bufs[l]);
        }
    }
    let mut out = [[0u8; 32]; LANES];
    for l in 0..LANES {
        for (i, word) in states[l].iter().enumerate() {
            out[l][i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
    }
    out
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for Sha256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Sha256")
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// One-shot SHA-256 over a batch of independent messages.
///
/// Groups the batch four messages at a time through the interleaved
/// multi-buffer compressor (`compress4`), which runs four independent
/// compression states in lockstep; the ≤3-message remainder takes the
/// scalar path. Digests are returned in input order.
pub fn sha256_many<'a, I>(inputs: I) -> Vec<[u8; 32]>
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let msgs: Vec<&[u8]> = inputs.into_iter().collect();
    let mut out = Vec::with_capacity(msgs.len());
    let mut groups = msgs.chunks_exact(LANES);
    for group in &mut groups {
        out.extend(sha256x4([group[0], group[1], group[2], group[3]]));
    }
    out.extend(groups.remainder().iter().map(|m| sha256(m)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::hex_encode;

    fn hash_hex(data: &[u8]) -> String {
        hex_encode(&sha256(data))
    }

    #[test]
    fn fips_empty() {
        assert_eq!(
            hash_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_abc() {
        assert_eq!(
            hash_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_448_bits() {
        assert_eq!(
            hash_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn fips_896_bits() {
        assert_eq!(
            hash_hex(
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
                  hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"
            ),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex_encode(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot_across_split_points() {
        let data: Vec<u8> = (0u32..300).map(|i| (i % 251) as u8).collect();
        let oneshot = sha256(&data);
        for split in [0usize, 1, 63, 64, 65, 127, 128, 200, 299, 300] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn update_in_tiny_pieces() {
        let data = b"the quick brown fox jumps over the lazy dog repeatedly and often";
        let mut h = Sha256::new();
        for b in data.iter() {
            h.update(&[*b]);
        }
        assert_eq!(h.finalize(), sha256(data));
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha256(b"pin-a"), sha256(b"pin-b"));
    }

    #[test]
    fn many_matches_oneshot_across_padding_boundaries() {
        // Lengths straddling every padding case: empty, short, exactly one
        // block, the 55/56/63/64 marker boundaries, and multi-block.
        let lengths = [
            0usize, 1, 3, 54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129, 300,
        ];
        let msgs: Vec<Vec<u8>> = lengths
            .iter()
            .map(|&n| (0..n).map(|i| (i % 251) as u8).collect())
            .collect();
        let batched = sha256_many(msgs.iter().map(|m| m.as_slice()));
        assert_eq!(batched.len(), msgs.len());
        for (msg, digest) in msgs.iter().zip(&batched) {
            assert_eq!(*digest, sha256(msg), "len {}", msg.len());
        }
    }

    #[test]
    fn many_handles_unequal_lane_lengths_in_one_group() {
        // One 4-wide group whose lanes exhaust at different block counts:
        // the lockstep prefix plus per-lane scalar tails must all agree.
        let msgs: Vec<Vec<u8>> = vec![vec![7u8; 10], vec![8u8; 500], vec![9u8; 64], vec![1u8; 200]];
        let batched = sha256_many(msgs.iter().map(|m| m.as_slice()));
        for (msg, digest) in msgs.iter().zip(&batched) {
            assert_eq!(*digest, sha256(msg));
        }
    }

    #[test]
    fn many_remainder_sizes() {
        for n in 0..9usize {
            let msgs: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; 40 + i]).collect();
            let batched = sha256_many(msgs.iter().map(|m| m.as_slice()));
            assert_eq!(batched.len(), n);
            for (msg, digest) in msgs.iter().zip(&batched) {
                assert_eq!(*digest, sha256(msg));
            }
        }
    }
}
