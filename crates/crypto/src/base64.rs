//! Standard base64 (RFC 4648 §4, with `=` padding).
//!
//! Pins are conventionally written `sha256/<base64-of-digest>`; the paper's
//! static scanner matches the base64 alphabet `[a-zA-Z0-9+/=]` explicitly,
//! so the codec here uses exactly that alphabet.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes `data` as standard padded base64.
pub fn b64encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3f] as char);
        if chunk.len() > 1 {
            out.push(ALPHABET[(triple >> 6) as usize & 0x3f] as char);
        } else {
            out.push('=');
        }
        if chunk.len() > 2 {
            out.push(ALPHABET[triple as usize & 0x3f] as char);
        } else {
            out.push('=');
        }
    }
    out
}

/// Error returned by [`b64decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum B64Error {
    /// Input length is not a multiple of 4.
    BadLength,
    /// A character outside the base64 alphabet (or misplaced padding).
    BadChar(char),
    /// Input exceeds the caller-supplied byte cap (see [`b64decode_bounded`]).
    TooLong {
        /// Input length in bytes.
        len: usize,
        /// The cap that was exceeded.
        cap: usize,
    },
}

impl core::fmt::Display for B64Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            B64Error::BadLength => write!(f, "base64 input length not a multiple of 4"),
            B64Error::BadChar(c) => write!(f, "invalid base64 character {c:?}"),
            B64Error::TooLong { len, cap } => {
                write!(f, "base64 input of {len} bytes exceeds cap of {cap}")
            }
        }
    }
}

impl std::error::Error for B64Error {}

fn decode_char(c: u8) -> Option<u8> {
    match c {
        b'A'..=b'Z' => Some(c - b'A'),
        b'a'..=b'z' => Some(c - b'a' + 26),
        b'0'..=b'9' => Some(c - b'0' + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decodes standard padded base64.
pub fn b64decode(s: &str) -> Result<Vec<u8>, B64Error> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(B64Error::BadLength);
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, chunk) in bytes.chunks(4).enumerate() {
        let last = i == bytes.len() / 4 - 1;
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || (pad > 0 && !last) {
            return Err(B64Error::BadChar('='));
        }
        let mut triple: u32 = 0;
        for (j, &c) in chunk.iter().enumerate() {
            let v = if c == b'=' && j >= 4 - pad {
                0
            } else {
                decode_char(c).ok_or(B64Error::BadChar(c as char))?
            };
            triple = (triple << 6) | v as u32;
        }
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad < 1 {
            out.push(triple as u8);
        }
    }
    Ok(out)
}

/// Decodes standard padded base64 after rejecting inputs longer than
/// `max_input_bytes` — the hostile-input entry point used wherever the
/// input length is attacker-influenced.
pub fn b64decode_bounded(s: &str, max_input_bytes: usize) -> Result<Vec<u8>, B64Error> {
    if s.len() > max_input_bytes {
        return Err(B64Error::TooLong {
            len: s.len(),
            cap: max_input_bytes,
        });
    }
    b64decode(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        assert_eq!(b64encode(b""), "");
        assert_eq!(b64encode(b"f"), "Zg==");
        assert_eq!(b64encode(b"fo"), "Zm8=");
        assert_eq!(b64encode(b"foo"), "Zm9v");
        assert_eq!(b64encode(b"foob"), "Zm9vYg==");
        assert_eq!(b64encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(b64encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn decode_vectors() {
        assert_eq!(b64decode("").unwrap(), b"");
        assert_eq!(b64decode("Zg==").unwrap(), b"f");
        assert_eq!(b64decode("Zm8=").unwrap(), b"fo");
        assert_eq!(b64decode("Zm9vYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn decode_rejects_bad_length() {
        assert_eq!(b64decode("Zm9"), Err(B64Error::BadLength));
    }

    #[test]
    fn decode_rejects_bad_char() {
        assert_eq!(b64decode("Zm9!"), Err(B64Error::BadChar('!')));
    }

    #[test]
    fn decode_rejects_interior_padding() {
        assert_eq!(b64decode("Zg==Zg=="), Err(B64Error::BadChar('=')));
    }

    #[test]
    fn digest_roundtrip_is_44_chars() {
        // A SHA-256 SPKI pin is always 44 base64 characters (32 bytes).
        let d = crate::sha256::sha256(b"spki");
        let e = b64encode(&d);
        assert_eq!(e.len(), 44);
        assert_eq!(b64decode(&e).unwrap(), d);
    }

    #[test]
    fn sha1_pin_is_28_chars() {
        // A SHA-1 pin is 28 base64 characters (20 bytes) — the lower bound of
        // the paper's scanner pattern `{28,64}`.
        let d = crate::sha1::sha1(b"spki");
        assert_eq!(b64encode(&d).len(), 28);
    }

    #[test]
    fn bounded_decode_rejects_oversized_input() {
        assert_eq!(
            b64decode_bounded("Zm9vYmFy", 4),
            Err(B64Error::TooLong { len: 8, cap: 4 })
        );
        assert_eq!(b64decode_bounded("Zm9vYmFy", 8).unwrap(), b"foobar");
    }

    #[test]
    fn roundtrip_various_lengths() {
        for n in 0..70usize {
            let data: Vec<u8> = (0..n).map(|i| (i * 31 % 256) as u8).collect();
            assert_eq!(b64decode(&b64encode(&data)).unwrap(), data, "len {n}");
        }
    }
}
