//! SHA-1 (FIPS 180-4), implemented from scratch.
//!
//! SHA-1 is cryptographically broken, but it still appears in the pinning
//! ecosystem the paper measures: HPKP-era `sha1/<base64>` pins, OkHttp's
//! legacy pin syntax, and old DANE deployments. The paper's static scanner
//! explicitly searches for `sha(1|256)/...` strings, so we need the real
//! digest to plant and recover SHA-1 pins.

/// Streaming SHA-1 hasher.
///
/// ```
/// use pinning_crypto::sha1::sha1;
/// assert_eq!(
///     pinning_crypto::hex::hex_encode(&sha1(b"abc")),
///     "a9993e364706816aba3e25717850c26c9cd0d89d",
/// );
/// ```
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

const H0: [u32; 5] = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0];

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: H0,
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes the hash and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5a827999u32),
                20..=39 => (b ^ c ^ d, 0x6ed9eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let t = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = t;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for Sha1 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Sha1")
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

/// One-shot SHA-1.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::hex_encode;

    #[test]
    fn fips_empty() {
        assert_eq!(
            hex_encode(&sha1(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn fips_abc() {
        assert_eq!(
            hex_encode(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn fips_448_bits() {
        assert_eq!(
            hex_encode(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex_encode(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0u32..500).map(|i| (i * 7 % 256) as u8).collect();
        let oneshot = sha1(&data);
        for split in [0usize, 1, 63, 64, 65, 130, 499, 500] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), oneshot, "split at {split}");
        }
    }
}
