//! Cryptographic primitives for the `app-tls-pinning` reproduction.
//!
//! The paper's pinning mechanisms are built on a handful of primitives:
//!
//! * **SHA-1 / SHA-256** — SPKI pins are `sha1(spki)` / `sha256(spki)`,
//!   base64-encoded (RFC 7469 style, as used by OkHttp's
//!   `CertificatePinner`, Android NSC `<pin digest="SHA-256">`, and HPKP).
//!   Implemented from scratch in [`mod@sha1`] and [`mod@sha256`] and tested against
//!   the FIPS 180 vectors.
//! * **HMAC** — used by the simulated signature scheme ([`sig`]).
//! * **base64 / hex** — pin encodings and certificate fingerprints
//!   ([`base64`], [`hex`]).
//! * **Simulated public-key signatures** — see [`sig`]; real RSA/ECDSA
//!   arithmetic is out of scope (and irrelevant to the measurement
//!   methodology), so signatures are modeled as keyed hashes. The chain
//!   *validation logic* in `pinning-pki` is unchanged by this substitution.
//! * **Deterministic sub-seeding** — [`rng::SplitMix64`] derives stable
//!   per-entity seeds so the whole study is reproducible from one seed.
//!
//! Nothing in this crate is suitable for production security use; the hash
//! functions are real, but the signature scheme is intentionally forgeable
//! inside the closed simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base64;
pub mod hex;
pub mod hmac;
pub mod rng;
pub mod sha1;
pub mod sha256;
pub mod sig;

pub use base64::{b64decode, b64decode_bounded, b64encode};
pub use hex::{hex_decode, hex_decode_bounded, hex_encode};
pub use hmac::{hmac_sha1, hmac_sha256};
pub use rng::SplitMix64;
pub use sha1::{sha1, Sha1};
pub use sha256::{sha256, sha256_many, Sha256};
pub use sig::{KeyPair, PublicKey, Signature};
