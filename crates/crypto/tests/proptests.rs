//! Property tests for the cryptographic primitives.

use pinning_crypto::{
    b64decode, b64encode, hex_decode, hex_encode, hmac_sha256, sha256, SplitMix64,
};
use pinning_crypto::sha1::Sha1;
use pinning_crypto::sha256::Sha256;
use pinning_crypto::sig::KeyPair;
use proptest::prelude::*;

proptest! {
    #[test]
    fn sha256_streaming_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..1024),
        splits in proptest::collection::vec(any::<prop::sample::Index>(), 0..6),
    ) {
        let mut points: Vec<usize> = splits.iter().map(|i| i.index(data.len() + 1)).collect();
        points.push(0);
        points.push(data.len());
        points.sort_unstable();
        let mut h = Sha256::new();
        for w in points.windows(2) {
            h.update(&data[w[0]..w[1]]);
        }
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn sha1_streaming_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..1024),
        split in any::<prop::sample::Index>(),
    ) {
        let at = split.index(data.len() + 1);
        let mut h = Sha1::new();
        h.update(&data[..at]);
        h.update(&data[at..]);
        prop_assert_eq!(h.finalize(), pinning_crypto::sha1::sha1(&data));
    }

    #[test]
    fn b64_roundtrip_and_length(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        let e = b64encode(&data);
        prop_assert_eq!(e.len(), data.len().div_ceil(3) * 4);
        prop_assert_eq!(b64decode(&e).unwrap(), data);
    }

    #[test]
    fn b64_rejects_non_alphabet(c in "[^A-Za-z0-9+/=]") {
        // A 4-char block with one invalid character must be rejected.
        let s = format!("AA{}A", c);
        if s.len() == 4 {
            prop_assert!(b64decode(&s).is_err());
        }
    }

    #[test]
    fn hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..600)) {
        prop_assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
    }

    #[test]
    fn hmac_differs_under_different_keys(
        k1 in proptest::collection::vec(any::<u8>(), 1..64),
        k2 in proptest::collection::vec(any::<u8>(), 1..64),
        msg in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        if k1 != k2 {
            prop_assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
        }
    }

    #[test]
    fn splitmix_streams_are_reproducible(seed in any::<u64>(), tag in "[a-z]{1,12}") {
        let mut a = SplitMix64::new(seed).derive(&tag);
        let mut b = SplitMix64::new(seed).derive(&tag);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_next_below_bounds(seed in any::<u64>(), bound in 1u64..10_000) {
        let mut g = SplitMix64::new(seed);
        for _ in 0..32 {
            prop_assert!(g.next_below(bound) < bound);
        }
    }

    #[test]
    fn signatures_verify_and_bind_to_message(
        seed in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 0..256),
        other in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let kp = KeyPair::generate(&mut SplitMix64::new(seed));
        let sig = kp.sign(&msg);
        prop_assert!(kp.public.verify(&msg, &sig));
        if msg != other {
            prop_assert!(!kp.public.verify(&other, &sig));
        }
    }
}
