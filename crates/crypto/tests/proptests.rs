//! Property-style tests for the cryptographic primitives, driven by a
//! deterministic SplitMix64 input sweep (no external crates, fully offline).

use pinning_crypto::sha1::Sha1;
use pinning_crypto::sha256::Sha256;
use pinning_crypto::sig::KeyPair;
use pinning_crypto::{
    b64decode, b64encode, hex_decode, hex_encode, hmac_sha256, sha256, SplitMix64,
};

const CASES: u64 = 200;

fn bytes(rng: &mut SplitMix64, max_len: usize) -> Vec<u8> {
    let len = rng.next_below(max_len as u64 + 1) as usize;
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

#[test]
fn sha256_streaming_equals_oneshot() {
    let mut rng = SplitMix64::new(0x256);
    for _ in 0..CASES {
        let data = bytes(&mut rng, 1024);
        let n_splits = rng.next_below(6) as usize;
        let mut points: Vec<usize> = (0..n_splits)
            .map(|_| rng.next_below(data.len() as u64 + 1) as usize)
            .collect();
        points.push(0);
        points.push(data.len());
        points.sort_unstable();
        let mut h = Sha256::new();
        for w in points.windows(2) {
            h.update(&data[w[0]..w[1]]);
        }
        assert_eq!(h.finalize(), sha256(&data));
    }
}

#[test]
fn sha256_multiblock_fast_path_matches_byte_at_a_time() {
    // The multi-block `update` fast path compresses whole 64-byte blocks
    // straight from the caller's slice. Feeding the same message one byte at
    // a time never triggers that path, so the two must agree for every
    // (length, split-point) combination to prove the fast path is sound.
    let mut rng = SplitMix64::new(0xfa57);
    for _ in 0..CASES {
        // Bias lengths around block boundaries where the fast path kicks in.
        let base = rng.next_below(5) as usize * 64;
        let data = bytes(&mut rng, base + 130);
        let mut reference = Sha256::new();
        for b in &data {
            reference.update(std::slice::from_ref(b));
        }
        let reference = reference.finalize();

        // Random split points: each segment may cover several whole blocks.
        let at = rng.next_below(data.len() as u64 + 1) as usize;
        let mut h = Sha256::new();
        h.update(&data[..at]);
        h.update(&data[at..]);
        assert_eq!(h.finalize(), reference, "len {} split {at}", data.len());
        assert_eq!(sha256(&data), reference, "one-shot len {}", data.len());
    }
}

#[test]
fn sha256_many_matches_individual_hashes() {
    let mut rng = SplitMix64::new(0x3a57);
    for _ in 0..20 {
        let msgs: Vec<Vec<u8>> = (0..rng.next_below(8) + 1)
            .map(|_| bytes(&mut rng, 300))
            .collect();
        let batch = pinning_crypto::sha256::sha256_many(msgs.iter().map(Vec::as_slice));
        let singles: Vec<[u8; 32]> = msgs.iter().map(|m| sha256(m)).collect();
        assert_eq!(batch, singles);
    }
}

#[test]
fn sha1_streaming_equals_oneshot() {
    let mut rng = SplitMix64::new(0x5a1);
    for _ in 0..CASES {
        let data = bytes(&mut rng, 1024);
        let at = rng.next_below(data.len() as u64 + 1) as usize;
        let mut h = Sha1::new();
        h.update(&data[..at]);
        h.update(&data[at..]);
        assert_eq!(h.finalize(), pinning_crypto::sha1::sha1(&data));
    }
}

#[test]
fn b64_roundtrip_and_length() {
    let mut rng = SplitMix64::new(0xb64);
    for _ in 0..CASES {
        let data = bytes(&mut rng, 600);
        let e = b64encode(&data);
        assert_eq!(e.len(), data.len().div_ceil(3) * 4);
        assert_eq!(b64decode(&e).unwrap(), data);
    }
}

#[test]
fn b64_rejects_non_alphabet() {
    // Every 4-char block with one character outside the alphabet must be
    // rejected (sweep the whole single-byte space instead of sampling).
    for c in 0u8..=0x7f {
        let ch = c as char;
        if ch.is_ascii_alphanumeric() || ch == '+' || ch == '/' || ch == '=' {
            continue;
        }
        let s = format!("AA{ch}A");
        if s.len() == 4 {
            assert!(b64decode(&s).is_err(), "accepted invalid char {c:#x}");
        }
    }
}

#[test]
fn hex_roundtrip() {
    let mut rng = SplitMix64::new(0x4e);
    for _ in 0..CASES {
        let data = bytes(&mut rng, 600);
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
    }
}

#[test]
fn hmac_differs_under_different_keys() {
    let mut rng = SplitMix64::new(0x4ac);
    for _ in 0..CASES {
        let mut k1 = bytes(&mut rng, 63);
        k1.push(rng.next_u64() as u8); // non-empty
        let mut k2 = bytes(&mut rng, 63);
        k2.push(rng.next_u64() as u8);
        let msg = bytes(&mut rng, 256);
        if k1 != k2 {
            assert_ne!(hmac_sha256(&k1, &msg), hmac_sha256(&k2, &msg));
        }
    }
}

#[test]
fn splitmix_streams_are_reproducible() {
    let mut rng = SplitMix64::new(0x123);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let tag: String = (0..1 + rng.next_below(12))
            .map(|_| (b'a' + rng.next_below(26) as u8) as char)
            .collect();
        let mut a = SplitMix64::new(seed).derive(&tag);
        let mut b = SplitMix64::new(seed).derive(&tag);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

#[test]
fn splitmix_next_below_bounds() {
    let mut rng = SplitMix64::new(0x456);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let bound = 1 + rng.next_below(9_999);
        let mut g = SplitMix64::new(seed);
        for _ in 0..32 {
            assert!(g.next_below(bound) < bound);
        }
    }
}

#[test]
fn signatures_verify_and_bind_to_message() {
    let mut rng = SplitMix64::new(0x519);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let msg = bytes(&mut rng, 256);
        let other = bytes(&mut rng, 256);
        let kp = KeyPair::generate(&mut SplitMix64::new(seed));
        let sig = kp.sign(&msg);
        assert!(kp.public.verify(&msg, &sig));
        if msg != other {
            assert!(!kp.public.verify(&other, &sig));
        }
    }
}

#[test]
fn text_decoders_never_panic_on_arbitrary_ascii() {
    let mut rng = SplitMix64::new(0xa5c2);
    let glyphs: Vec<u8> = (0x20u8..0x7f).collect();
    for _ in 0..CASES * 4 {
        let len = rng.next_below(200) as usize;
        let s: String = (0..len)
            .map(|_| glyphs[rng.next_below(glyphs.len() as u64) as usize] as char)
            .collect();
        let _ = b64decode(&s);
        let _ = hex_decode(&s);
    }
}

#[test]
fn bounded_decoders_respect_the_cap_exactly() {
    use pinning_crypto::base64::B64Error;
    use pinning_crypto::hex::HexError;
    use pinning_crypto::{b64decode_bounded, hex_decode_bounded};
    let mut rng = SplitMix64::new(0xa5c3);
    for _ in 0..CASES {
        let cap = 8 + rng.next_below(64) as usize;
        let at_cap = "A".repeat(cap);
        let over_cap = "A".repeat(cap + 1);
        // At the cap: the decoder runs (outcome depends on validity).
        assert!(!matches!(
            b64decode_bounded(&at_cap, cap),
            Err(B64Error::TooLong { .. })
        ));
        assert!(!matches!(
            hex_decode_bounded(&at_cap, cap),
            Err(HexError::TooLong { .. })
        ));
        // One past the cap: rejected before any decoding work.
        assert!(matches!(
            b64decode_bounded(&over_cap, cap),
            Err(B64Error::TooLong { .. })
        ));
        assert!(matches!(
            hex_decode_bounded(&over_cap, cap),
            Err(HexError::TooLong { .. })
        ));
    }
}
