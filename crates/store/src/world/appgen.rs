//! Per-app generation: products, pinning plans, consistency profiles,
//! behaviours, and package builds.

use crate::world::{Generator, NOISE_DOMAINS};
use pinning_app::app::MobileApp;
use pinning_app::behavior::{AppBehavior, Interaction, PlannedConnection};
use pinning_app::builder::{build_package, BuildSpec};
use pinning_app::category::Category;
use pinning_app::pii::PiiType;
use pinning_app::pinning::{CertAssetFormat, DomainPinRule, PinSource, PinStorage, PinTarget};
use pinning_app::platform::{AppId, Platform};
use pinning_app::sdk::{self, SdkSpec};
use pinning_crypto::SplitMix64;
use pinning_pki::pin::PinAlgorithm;
use pinning_pki::Certificate;
use pinning_tls::TlsLibrary;
use std::collections::HashMap;

/// Cross-platform pinning consistency profiles, weighted to reproduce
/// Figures 2–4 (27 both-platform pinners: 13 identical + 2 consistent with
/// extras, 2 inconsistent-with-overlap, 4 inconsistent one-sided, 6
/// disjoint/inconclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ConsistencyProfile {
    /// Same pinned domain set on both platforms.
    Identical,
    /// One common pinned domain; each platform pins extras the other never
    /// contacts (still *consistent* by the paper's definition).
    ConsistentExtra,
    /// Common pinned domain, plus a domain pinned on one platform that the
    /// other contacts unpinned.
    InconsistentOverlap,
    /// A pinned domain on one platform appears unpinned on the other; no
    /// common pinned domain.
    InconsistentOneSided,
    /// Pinned domains on each platform never appear on the other.
    Disjoint,
}

fn sample_profile(rng: &mut SplitMix64) -> ConsistencyProfile {
    match rng.next_below(27) {
        0..=12 => ConsistencyProfile::Identical,
        13..=14 => ConsistencyProfile::ConsistentExtra,
        15..=16 => ConsistencyProfile::InconsistentOverlap,
        17..=20 => ConsistencyProfile::InconsistentOneSided,
        _ => ConsistencyProfile::Disjoint,
    }
}

/// Which first-party domains a platform's app pins / contacts.
#[derive(Debug, Clone, Default)]
pub(crate) struct PlatformPlan {
    pub(crate) pins_first_party: bool,
    /// Domains pinned (⊆ contacted).
    pub(crate) pinned: Vec<String>,
    /// All first-party domains contacted.
    pub(crate) contacted: Vec<String>,
    /// Custom-PKI pinned domain (exclusive to this platform), if any.
    pub(crate) custom_pki_domain: Option<String>,
    /// Self-signed oddball domain (§5.3.1), if any.
    pub(crate) self_signed_domain: Option<String>,
    /// Force SDK pin activation to match the sibling platform.
    pub(crate) synced_sdk_rolls: bool,
    /// Keep bundled SDK pinning dormant so the planned first-party
    /// consistency profile is what the pipeline observes.
    pub(crate) suppress_sdk_pinning: bool,
}

pub(crate) struct Product {
    pub(crate) key: String,
    pub(crate) name: String,
    pub(crate) org: String,
    pub(crate) category: Category,
    pub(crate) cross: bool,
    pub(crate) rank_score_android: f64,
    pub(crate) rank_score_ios: f64,
    pub(crate) base_domain: String,
    pub(crate) fp_domains: Vec<String>,
    pub(crate) android: Option<PlatformPlan>,
    pub(crate) ios: Option<PlatformPlan>,
    pub(crate) sdk_names: Vec<&'static str>,
}

const HEAD_CATEGORY_WEIGHTS: &[(Category, u32)] = &[
    (Category::Games, 34),
    (Category::Photography, 7),
    (Category::Weather, 4),
    (Category::Finance, 5),
    (Category::Shopping, 5),
    (Category::Entertainment, 4),
    (Category::FoodAndDrink, 4),
    (Category::Social, 5),
    (Category::Productivity, 5),
    (Category::Music, 3),
    (Category::Lifestyle, 4),
    (Category::Education, 5),
    (Category::Travel, 4),
    (Category::Business, 3),
    (Category::Communication, 2),
    (Category::Health, 2),
    (Category::Sports, 2),
    (Category::Navigation, 1),
    (Category::News, 1),
];

const TAIL_CATEGORY_WEIGHTS: &[(Category, u32)] = &[
    (Category::Education, 12),
    (Category::Games, 13),
    (Category::Tools, 6),
    (Category::Music, 6),
    (Category::Books, 6),
    (Category::Business, 8),
    (Category::Lifestyle, 6),
    (Category::Entertainment, 4),
    (Category::Travel, 4),
    (Category::Personalization, 4),
    (Category::FoodAndDrink, 5),
    (Category::Health, 4),
    (Category::Shopping, 3),
    (Category::Finance, 3),
    (Category::Social, 3),
    (Category::Productivity, 3),
    (Category::Photography, 2),
    (Category::Communication, 2),
    (Category::Sports, 2),
    (Category::Navigation, 1),
    (Category::Events, 1),
    (Category::Dating, 1),
    (Category::Comics, 1),
    (Category::Automobile, 1),
    (Category::News, 2),
];

fn weighted_category(table: &[(Category, u32)], rng: &mut SplitMix64) -> Category {
    let total: u32 = table.iter().map(|(_, w)| w).sum();
    let mut pick = rng.next_below(total as u64) as u32;
    for (cat, w) in table {
        if pick < *w {
            return *cat;
        }
        pick -= w;
    }
    table.last().expect("non-empty table").0
}

/// First-party pinning probability for a product on one platform.
fn fp_pin_prob(
    gen: &Generator<'_>,
    platform: Platform,
    rank_score: f64,
    category: Category,
) -> f64 {
    let rates = gen.config.rates(platform);
    // Popularity interpolation: the head of the store pins at the popular
    // rate, the tail at the tail rate.
    let base = if rank_score < 0.10 {
        rates.first_party_popular
    } else if rank_score < 0.30 {
        (rates.first_party_popular + rates.first_party_tail) / 2.0
    } else {
        rates.first_party_tail
    };
    let boost = if category.is_data_sensitive() {
        rates.sensitive_category_boost
    } else {
        1.0
    };
    (base * boost).min(0.9)
}

/// Generates every product, then every app, returning
/// `(apps, android_listing, ios_listing, alternativeto, products,
/// hostile_apps)`.
#[allow(clippy::type_complexity)]
pub(crate) fn generate_apps(
    gen: &mut Generator<'_>,
) -> (
    Vec<MobileApp>,
    Vec<usize>,
    Vec<usize>,
    Vec<String>,
    HashMap<String, (Option<usize>, Option<usize>)>,
    Vec<usize>,
) {
    let store_size = gen.config.store_size;
    let n_cross = gen.config.n_cross_products;
    let n_products = 2 * store_size - n_cross;

    // --- 1. Products and plans ---
    let mut products = Vec::with_capacity(n_products);
    for i in 0..n_products {
        products.push(make_product(gen, i, n_cross, store_size));
    }

    // §5.3.1's self-signed oddballs: first Android-pinning product and
    // first iOS-pinning product get a long-lived self-signed destination.
    plant_self_signed_oddballs(gen, &mut products);

    // --- 2. Register first-party servers ---
    for p in &products {
        for d in &p.fp_domains {
            gen.register_public_server(vec![d.clone()], &p.org);
        }
        for plan in [&p.android, &p.ios].into_iter().flatten() {
            if let Some(d) = &plan.custom_pki_domain {
                gen.register_custom_server(vec![d.clone()], &p.org);
            }
            if let Some(d) = &plan.self_signed_domain {
                let years = if plan.custom_pki_domain.is_some() {
                    10
                } else {
                    27
                };
                gen.register_self_signed_server(vec![d.clone()], &p.org, years);
            }
        }
    }

    // --- 3. Apps ---
    let mut apps = Vec::new();
    let mut product_index: HashMap<String, (Option<usize>, Option<usize>)> = HashMap::new();
    for (pi, p) in products.iter().enumerate() {
        let mut entry = (None, None);
        if p.android.is_some() {
            let idx = apps.len();
            apps.push(build_app(gen, p, pi, Platform::Android));
            entry.0 = Some(idx);
        }
        if p.ios.is_some() {
            let idx = apps.len();
            apps.push(build_app(gen, p, pi, Platform::Ios));
            entry.1 = Some(idx);
        }
        product_index.insert(p.key.clone(), entry);
    }

    // --- 4. Listings (rank order) ---
    let mut android_listing: Vec<usize> = apps
        .iter()
        .enumerate()
        .filter(|(_, a)| a.id.platform == Platform::Android)
        .map(|(i, _)| i)
        .collect();
    let score_of = |apps: &[MobileApp], products: &[Product], i: usize, platform: Platform| {
        let key = &apps[i].product_key;
        let p = products
            .iter()
            .find(|p| &p.key == key)
            .expect("product exists");
        match platform {
            Platform::Android => p.rank_score_android,
            Platform::Ios => p.rank_score_ios,
        }
    };
    android_listing.sort_by(|&a, &b| {
        score_of(&apps, &products, a, Platform::Android)
            .partial_cmp(&score_of(&apps, &products, b, Platform::Android))
            .expect("scores are finite")
    });
    let mut ios_listing: Vec<usize> = apps
        .iter()
        .enumerate()
        .filter(|(_, a)| a.id.platform == Platform::Ios)
        .map(|(i, _)| i)
        .collect();
    ios_listing.sort_by(|&a, &b| {
        score_of(&apps, &products, a, Platform::Ios)
            .partial_cmp(&score_of(&apps, &products, b, Platform::Ios))
            .expect("scores are finite")
    });
    for (rank, &i) in android_listing.iter().enumerate() {
        apps[i].popularity_rank = rank as u32 + 1;
    }
    for (rank, &i) in ios_listing.iter().enumerate() {
        apps[i].popularity_rank = rank as u32 + 1;
    }

    // --- 5. AlternativeTo cross listing (popularity order) ---
    let mut cross: Vec<&Product> = products.iter().filter(|p| p.cross).collect();
    cross.sort_by(|a, b| {
        (a.rank_score_android + a.rank_score_ios)
            .partial_cmp(&(b.rank_score_android + b.rank_score_ios))
            .expect("scores are finite")
    });
    let alternativeto: Vec<String> = cross.iter().map(|p| p.key.clone()).collect();

    // --- 6. Adversarial cohort (after listings, so rankings are
    //        untouched; hostile apps live outside the store) ---
    let hostile_apps = plant_adversarial_apps(gen, &mut apps);

    (
        apps,
        android_listing,
        ios_listing,
        alternativeto,
        product_index,
        hostile_apps,
    )
}

pub(crate) fn make_product(
    gen: &mut Generator<'_>,
    i: usize,
    n_cross: usize,
    store_size: usize,
) -> Product {
    let mut rng = gen.rng.derive(&format!("product/{i}"));
    let cross = i < n_cross;
    let key = format!("app{i:05}");
    let name = format!("App {i}");
    let org = format!("Dev{i} Inc");
    let base_domain = format!("{key}.example");

    // Cross-platform (AlternativeTo-listed) products skew popular in the
    // store charts (mildly) and are mature products that pin like popular
    // apps (strongly) — the paper's Common apps pin at popular-like rates
    // without all sitting in the top charts.
    let pop_bias = if cross { 0.8 } else { 1.0 };
    let rank_score_android = rng.next_f64() * pop_bias;
    let rank_score_ios = (rank_score_android * 0.7 + rng.next_f64() * 0.3) * pop_bias.max(1.0);
    let pin_bias = if cross { 0.10 } else { 1.0 };

    let tier_score = rank_score_android.min(rank_score_ios);
    let category = if tier_score < 0.25 {
        weighted_category(HEAD_CATEGORY_WEIGHTS, &mut rng)
    } else {
        weighted_category(TAIL_CATEGORY_WEIGHTS, &mut rng)
    };

    // First-party domains.
    let mut fp_domains = vec![format!("api.{base_domain}")];
    if cross || rng.chance(0.8) {
        // Cross-platform products always have a web presence (that is how
        // AlternativeTo indexes them).
        fp_domains.push(format!("www.{base_domain}"));
    }
    if rng.chance(0.4) {
        fp_domains.push(format!("cdn.{base_domain}"));
    }
    if rng.chance(0.3) {
        fp_domains.push(format!("auth.{base_domain}"));
    }

    // On-platform presence.
    let on_android = cross || i < n_cross + (store_size - n_cross);
    let on_ios = cross || i >= n_cross + (store_size - n_cross);

    // Pinning plans (pin probabilities use the maturity-biased score).
    // Cross-platform products pin with a *shared product propensity*: the
    // paper's Common dataset pins at nearly identical rates on the two
    // platforms (8.17% vs 8.52%), unlike the stores at large.
    let pa_base = fp_pin_prob(
        gen,
        Platform::Android,
        rank_score_android * pin_bias,
        category,
    );
    let pa = if cross {
        (pa_base * 2.2).min(0.9)
    } else {
        pa_base
    };
    let pi = if cross {
        pa * 1.05
    } else {
        fp_pin_prob(gen, Platform::Ios, rank_score_ios * pin_bias, category)
    };
    let (mut android_plan, mut ios_plan) = if cross {
        cross_plans(&mut rng, &fp_domains, pa, pi)
    } else {
        (
            single_plan(&mut rng, &fp_domains, pa),
            single_plan(&mut rng, &fp_domains, pi),
        )
    };
    if let Some(plan) = android_plan.as_mut() {
        maybe_custom_pki(gen, &mut rng, plan, &base_domain);
    }
    if let Some(plan) = ios_plan.as_mut() {
        maybe_custom_pki(gen, &mut rng, plan, &base_domain);
    }

    // SDK adoption (shared base list for cross products): popular apps
    // bundle many SDKs, tail apps few — which is what pushes SDK-driven
    // pinning toward the head of the store (Table 3's Popular≫Random gap).
    let sdk_names = pick_sdks(&mut rng, category, tier_score * pin_bias, cross);

    Product {
        key,
        name,
        org,
        category,
        cross,
        rank_score_android,
        rank_score_ios,
        base_domain,
        fp_domains,
        android: on_android.then_some(android_plan.unwrap_or_default()),
        ios: on_ios.then_some(ios_plan.unwrap_or_default()),
        sdk_names,
    }
}

fn maybe_custom_pki(
    gen: &Generator<'_>,
    rng: &mut SplitMix64,
    plan: &mut PlatformPlan,
    base_domain: &str,
) {
    if plan.pins_first_party && rng.chance(gen.config.custom_pki_prob) {
        let d = format!("vpn.{base_domain}");
        plan.custom_pki_domain = Some(d.clone());
        plan.pinned.push(d.clone());
        plan.contacted.push(d);
    }
}

/// A single-platform plan: pin 1–2 of the first-party domains or none.
fn single_plan(rng: &mut SplitMix64, fp: &[String], p: f64) -> Option<PlatformPlan> {
    let contacted = contact_set(rng, fp);
    let pins = rng.chance(p);
    let pinned = if pins {
        let n = 1 + rng.next_below(2) as usize;
        contacted.iter().take(n).cloned().collect()
    } else {
        Vec::new()
    };
    Some(PlatformPlan {
        pins_first_party: pins,
        pinned,
        contacted,
        custom_pki_domain: None,
        self_signed_domain: None,
        synced_sdk_rolls: false,
        suppress_sdk_pinning: false,
    })
}

/// Which first-party domains the app actually contacts at launch — always
/// `api.`, the rest probabilistically.
fn contact_set(rng: &mut SplitMix64, fp: &[String]) -> Vec<String> {
    let mut out = vec![fp[0].clone()];
    for d in &fp[1..] {
        if rng.chance(0.6) {
            out.push(d.clone());
        }
    }
    out
}

/// Coordinated plans for a cross-platform product, with the §5.1
/// consistency structure.
fn cross_plans(
    rng: &mut SplitMix64,
    fp: &[String],
    pa: f64,
    pi: f64,
) -> (Option<PlatformPlan>, Option<PlatformPlan>) {
    // Correlated pinning: both / android-only / ios-only / neither.
    let p_both = 0.75 * pa.min(pi);
    let p_a_only = (pa - p_both).max(0.0);
    let p_i_only = (pi - p_both).max(0.0);
    let u = rng.next_f64();
    let (pin_a, pin_i) = if u < p_both {
        (true, true)
    } else if u < p_both + p_a_only {
        (true, false)
    } else if u < p_both + p_a_only + p_i_only {
        (false, true)
    } else {
        (false, false)
    };

    let mut a = PlatformPlan {
        pins_first_party: pin_a,
        ..Default::default()
    };
    let mut i = PlatformPlan {
        pins_first_party: pin_i,
        ..Default::default()
    };

    match (pin_a, pin_i) {
        (true, true) => {
            let profile = sample_profile(rng);
            apply_profile(rng, profile, fp, &mut a, &mut i);
        }
        (true, false) | (false, true) => {
            let (pinner, other) = if pin_a {
                (&mut a, &mut i)
            } else {
                (&mut i, &mut a)
            };
            pinner.contacted = contact_set(rng, fp);
            pinner.pinned = vec![pinner.contacted[0].clone()];
            other.contacted = contact_set(rng, fp);
            // Figure 4: half the exclusive pinners' domains show up unpinned
            // on the other platform, half never appear.
            let pinned_domain = pinner.pinned[0].clone();
            if rng.chance(0.5) {
                if !other.contacted.contains(&pinned_domain) {
                    other.contacted.push(pinned_domain);
                }
            } else {
                other.contacted.retain(|d| d != &pinned_domain);
                if other.contacted.is_empty() {
                    other
                        .contacted
                        .push(fp.last().expect("fp non-empty").clone());
                }
            }
        }
        (false, false) => {
            a.contacted = contact_set(rng, fp);
            i.contacted = contact_set(rng, fp);
        }
    }
    (Some(a), Some(i))
}

fn apply_profile(
    rng: &mut SplitMix64,
    profile: ConsistencyProfile,
    fp: &[String],
    a: &mut PlatformPlan,
    i: &mut PlatformPlan,
) {
    let common = fp[0].clone();
    match profile {
        ConsistencyProfile::Identical => {
            let shared = contact_set(rng, fp);
            let n = 1 + rng.next_below(2) as usize;
            let pinned: Vec<String> = shared.iter().take(n).cloned().collect();
            a.contacted = shared.clone();
            i.contacted = shared;
            a.pinned = pinned.clone();
            i.pinned = pinned;
            a.synced_sdk_rolls = true;
            i.synced_sdk_rolls = true;
        }
        ConsistencyProfile::ConsistentExtra => {
            // Common pinned domain + per-platform extras the other never
            // contacts.
            a.contacted = vec![common.clone()];
            i.contacted = vec![common.clone()];
            a.pinned = vec![common.clone()];
            i.pinned = vec![common.clone()];
            if fp.len() > 1 {
                a.contacted.push(fp[1].clone());
                a.pinned.push(fp[1].clone());
            }
            if fp.len() > 2 {
                i.contacted.push(fp[2].clone());
                i.pinned.push(fp[2].clone());
            }
            a.synced_sdk_rolls = true;
            i.synced_sdk_rolls = true;
        }
        ConsistencyProfile::InconsistentOverlap => {
            // Overlap on `common`, but Android pins a domain iOS contacts
            // unpinned.
            a.suppress_sdk_pinning = true;
            i.suppress_sdk_pinning = true;
            a.contacted = fp.to_vec();
            i.contacted = fp.to_vec();
            a.pinned = vec![common.clone()];
            i.pinned = vec![common];
            if fp.len() > 1 {
                a.pinned.push(fp[1].clone());
            }
        }
        ConsistencyProfile::InconsistentOneSided => {
            // Both platforms pin, but with no common pinned domain: one
            // side's pinned domain appears *unpinned* on the other (the
            // one-sided rows of Figure 3).
            a.suppress_sdk_pinning = true;
            i.suppress_sdk_pinning = true;
            let flip = rng.chance(0.5);
            let (x, y) = if flip { (i, a) } else { (a, i) };
            x.contacted = vec![fp[0].clone()];
            x.pinned = vec![fp[0].clone()];
            let alt = fp.get(1).unwrap_or(&fp[0]).clone();
            y.contacted = vec![fp[0].clone(), alt.clone()];
            y.pinned = vec![alt.clone()];
            if alt == fp[0] {
                // Degenerate domain list: fall back to a pure contradiction.
                y.pinned = Vec::new();
                y.pins_first_party = false;
            }
        }
        ConsistencyProfile::Disjoint => {
            // Each platform pins a domain the other never contacts.
            a.suppress_sdk_pinning = true;
            i.suppress_sdk_pinning = true;
            a.contacted = vec![fp[0].clone()];
            a.pinned = vec![fp[0].clone()];
            let alt = fp.get(1).unwrap_or(&fp[0]).clone();
            if alt == fp[0] {
                // Not enough domains to be disjoint; degrade to one-sided.
                i.contacted = vec![];
                i.pinned = vec![];
                i.pins_first_party = false;
            } else {
                i.contacted = vec![alt.clone()];
                i.pinned = vec![alt];
            }
        }
    }
}

fn pick_sdks(
    rng: &mut SplitMix64,
    category: Category,
    tier_score: f64,
    cross_platform_product: bool,
) -> Vec<&'static str> {
    let registry = sdk::registry();
    let n = if tier_score < 0.10 {
        3 + rng.next_below(6) as usize // head: 3–8 SDKs
    } else if tier_score < 0.30 {
        1 + rng.next_below(4) as usize // mid: 1–4
    } else {
        rng.next_below(3) as usize // tail: 0–2
    };
    if n == 0 {
        return Vec::new();
    }
    let mut picked: Vec<&'static str> = Vec::new();
    // Category affinity: finance/shopping apps embed payment & fraud SDKs
    // far more often (that is *why* Table 4/5 put Finance on top).
    let boost = |s: &SdkSpec| -> u32 {
        use pinning_app::sdk::SdkKind;
        let b = match (category, s.kind) {
            (Category::Finance, SdkKind::Payment | SdkKind::FraudPrevention | SdkKind::Billing) => {
                5
            }
            (Category::Shopping, SdkKind::Payment) => 4,
            (Category::Social, SdkKind::SocialNetwork) => 3,
            (Category::Games, SdkKind::Advertising) => 3,
            (Category::Photography, SdkKind::Creative) => 4,
            _ => 1,
        };
        s.adoption_weight * b
    };
    let total: u32 = registry.iter().map(&boost).sum();
    for _ in 0..n * 3 {
        if picked.len() >= n {
            break;
        }
        let mut pick = rng.next_below(total as u64) as u32;
        for s in registry {
            let w = boost(s);
            if pick < w {
                // Mature cross-platform products standardize on SDKs that
                // exist on both platforms.
                let ok = !cross_platform_product
                    || (s.available_on(Platform::Android) && s.available_on(Platform::Ios));
                if ok && !picked.contains(&s.name) {
                    picked.push(s.name);
                }
                break;
            }
            pick -= w;
        }
    }
    picked
}

/// The flavours of hostile app the adversarial cohort cycles through.
///
/// Each flavour attacks a different decoder or screening layer; the study
/// must degrade every one of them as `MalformedInput` — never panic, never
/// fabricate a pinning verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HostileKind {
    /// The server presents a 50-deep certificate chain.
    DeepChain,
    /// The chain revisits an intermediate (a cycle).
    Cycle,
    /// The chain is a self-issued certificate repeated back-to-back.
    SelfIssuedLoop,
    /// The leaf carries hundreds of SAN entries.
    GiantSan,
    /// The leaf stacks wildcard labels (`*.*.*.*.*.*`).
    AbsurdWildcard,
    /// The package ships a garbage-DER certificate asset.
    GarbageDerAsset,
    /// The package ships a `.pem` asset whose body is not valid PEM.
    BadPemAsset,
    /// The Android NSC file contains PEM text instead of XML.
    FakePemNsc,
}

impl HostileKind {
    /// All flavours, in planting order.
    pub const ALL: [HostileKind; 8] = [
        HostileKind::DeepChain,
        HostileKind::Cycle,
        HostileKind::SelfIssuedLoop,
        HostileKind::GiantSan,
        HostileKind::AbsurdWildcard,
        HostileKind::GarbageDerAsset,
        HostileKind::BadPemAsset,
        HostileKind::FakePemNsc,
    ];

    /// Whether this flavour serves a pathological chain (as opposed to a
    /// hostile package asset).
    pub fn attacks_served_chain(self) -> bool {
        matches!(
            self,
            HostileKind::DeepChain
                | HostileKind::Cycle
                | HostileKind::SelfIssuedLoop
                | HostileKind::GiantSan
                | HostileKind::AbsurdWildcard
        )
    }
}

/// Plants `config.adversarial_apps` hostile apps (outside the store
/// listings, so dataset sampling is untouched) and returns their indices
/// into `apps`.
pub(crate) fn plant_adversarial_apps(
    gen: &mut Generator<'_>,
    apps: &mut Vec<MobileApp>,
) -> Vec<usize> {
    let n = gen.config.adversarial_apps;
    let mut hostile = Vec::with_capacity(n);
    for k in 0..n {
        let kind = HostileKind::ALL[k % HostileKind::ALL.len()];
        let idx = apps.len();
        apps.push(build_hostile_app(gen, k, kind));
        hostile.push(idx);
    }
    hostile
}

fn hostile_chain(
    gen: &mut Generator<'_>,
    domain: &str,
    org: &str,
    kind: HostileKind,
) -> pinning_pki::CertificateChain {
    let mut rng = gen.rng.derive(&format!("srv-adv/{domain}"));
    let key = pinning_crypto::sig::KeyPair::generate(&mut rng);
    let inter_idx = (rng.next_below(gen.universe.n_intermediates() as u64)) as usize;
    let base =
        gen.universe
            .issue_server_chain_via(inter_idx, &[domain.to_string()], org, &key, 398);
    let certs = base.certs();
    let max_len = pinning_pki::Budget::STANDARD.max_chain_len;
    let max_names = pinning_pki::Budget::STANDARD.max_names;
    let mutated: Vec<Certificate> = match kind {
        HostileKind::DeepChain => {
            // ~50 distinct certificates: far past the chain-length budget.
            (0..(max_len * 3 + 2))
                .map(|i| {
                    let mut c = certs[0].clone();
                    c.tbs.serial = c.tbs.serial.wrapping_add(i as u64);
                    c.invalidate_derived();
                    c
                })
                .collect()
        }
        HostileKind::Cycle => {
            // leaf → inter → inter: the chain revisits its issuer.
            vec![certs[0].clone(), certs[1].clone(), certs[1].clone()]
        }
        HostileKind::SelfIssuedLoop => {
            let ss = gen
                .universe
                .issue_self_signed(org, &[domain.to_string()], 2, &mut rng);
            let c = ss.certs()[0].clone();
            vec![c.clone(), c]
        }
        HostileKind::GiantSan => {
            let mut c = certs[0].clone();
            c.tbs.san = (0..max_names * 8)
                .map(|i| format!("h{i}.{domain}"))
                .collect();
            c.tbs.san.push(domain.to_string());
            c.invalidate_derived();
            vec![c, certs[1].clone(), certs[2].clone()]
        }
        HostileKind::AbsurdWildcard => {
            let mut c = certs[0].clone();
            c.tbs.san = vec![format!("*.*.*.*.*.*.{domain}"), domain.to_string()];
            c.invalidate_derived();
            vec![c, certs[1].clone(), certs[2].clone()]
        }
        // Asset attackers serve their honest chain.
        HostileKind::GarbageDerAsset | HostileKind::BadPemAsset | HostileKind::FakePemNsc => {
            certs.to_vec()
        }
    };
    pinning_pki::CertificateChain::new(mutated)
}

fn build_hostile_app(gen: &mut Generator<'_>, k: usize, kind: HostileKind) -> MobileApp {
    use pinning_app::package::{AppFile, AppPackage};

    let key = format!("adv{k:04}");
    let domain = format!("api.{key}.example");
    let org = format!("Adversary{k} Ltd");
    let chain = hostile_chain(gen, &domain, &org, kind);
    gen.whois.record(&domain, &org);
    gen.network.register(pinning_netsim::OriginServer::modern(
        vec![domain.clone()],
        org.clone(),
        chain,
    ));

    let mut files = Vec::new();
    match kind {
        HostileKind::GarbageDerAsset => {
            // High tag byte + lying 32-bit length: never a valid TLV.
            let mut rng = gen.rng.derive(&format!("adv-der/{k}"));
            let mut garbage = vec![0xEEu8, 0xFF, 0xFF, 0xFF, 0xFF];
            garbage.extend((0..64).map(|_| rng.next_below(256) as u8));
            files.push(AppFile::binary("assets/pinned_ca.der", garbage));
        }
        HostileKind::BadPemAsset => {
            files.push(AppFile::text(
                "res/raw/bundled_ca_0.pem",
                "-----BEGIN CERTIFICATE-----\nnot base64 at all !!!\n-----END CERTIFICATE-----\n",
            ));
        }
        HostileKind::FakePemNsc => {
            files.push(AppFile::text(
                "res/xml/network_security_config.xml",
                "-----BEGIN CERTIFICATE-----\nAAAA\n-----END CERTIFICATE-----\n",
            ));
        }
        _ => {}
    }

    MobileApp {
        id: AppId::new(Platform::Android, format!("com.adversary.{key}")),
        product_key: key.clone(),
        name: format!("Adversary {k}"),
        developer_org: org,
        category: Category::Tools,
        popularity_rank: (gen.config.store_size + k + 1) as u32,
        sdk_names: Vec::new(),
        pin_rules: Vec::new(),
        first_party_domains: vec![domain.clone()],
        associated_domains: Vec::new(),
        uses_nsc: kind == HostileKind::FakePemNsc,
        behavior: AppBehavior {
            connections: vec![PlannedConnection::simple(domain, TlsLibrary::Conscrypt)],
        },
        package: AppPackage::new(Platform::Android, files),
    }
}

fn plant_self_signed_oddballs(gen: &mut Generator<'_>, products: &mut [Product]) {
    let mut planted_android = false;
    let mut planted_ios = false;
    for p in products.iter_mut() {
        if !planted_android {
            if let Some(plan) = p.android.as_mut() {
                if plan.pins_first_party && !p.cross {
                    let d = format!("legacy.{}", p.base_domain);
                    plan.self_signed_domain = Some(d.clone());
                    plan.pinned.push(d.clone());
                    plan.contacted.push(d);
                    planted_android = true;
                    continue;
                }
            }
        }
        if !planted_ios {
            if let Some(plan) = p.ios.as_mut() {
                if plan.pins_first_party && !p.cross {
                    let d = format!("legacy.{}", p.base_domain);
                    plan.self_signed_domain = Some(d.clone());
                    plan.pinned.push(d.clone());
                    plan.contacted.push(d);
                    planted_ios = true;
                }
            }
        }
        if planted_android && planted_ios {
            break;
        }
    }
    let _ = gen; // reserved for future use (kept for signature symmetry)
}

/// Samples where a first-party pin's material is stored.
fn sample_fp_storage(
    gen: &Generator<'_>,
    rng: &mut SplitMix64,
    platform: Platform,
    target: PinTarget,
) -> PinStorage {
    if platform == Platform::Android && rng.chance(gen.config.nsc_share_android) {
        return PinStorage::NscPinSet;
    }
    if rng.chance(gen.config.obfuscated_pin_prob) {
        return PinStorage::ObfuscatedCode;
    }
    // Leaf pins overwhelmingly ship as SPKI strings (§5.3.3: 24 of 30);
    // raw certificate files are mostly CA material.
    let raw_share = if target == PinTarget::Leaf {
        0.12
    } else {
        0.40
    };
    let r = rng.next_f64();
    if r < raw_share {
        let fmt = match rng.next_below(5) {
            0 => CertAssetFormat::Pem,
            1 => CertAssetFormat::Der,
            2 => CertAssetFormat::Crt,
            3 => CertAssetFormat::Cer,
            _ => CertAssetFormat::CertExt,
        };
        PinStorage::RawCertAsset(fmt)
    } else if r < raw_share + 0.45 {
        PinStorage::SpkiStringInCode(PinAlgorithm::Sha256)
    } else if r < raw_share + 0.53 {
        PinStorage::SpkiStringInNativeLib(PinAlgorithm::Sha256)
    } else if r < raw_share + 0.57 {
        PinStorage::SpkiStringInCode(PinAlgorithm::Sha1)
    } else {
        PinStorage::SpkiStringInCode(PinAlgorithm::Sha256)
    }
}

/// Samples which chain position a first-party rule pins (§5.3.2 mix).
fn sample_pin_target(gen: &Generator<'_>, rng: &mut SplitMix64) -> PinTarget {
    let (r, i, l) = gen.config.pin_target_weights;
    let total = (r + i + l) as u64;
    let pick = rng.next_below(total) as u32;
    if pick < r {
        PinTarget::Root
    } else if pick < r + i {
        PinTarget::Intermediate
    } else {
        PinTarget::Leaf
    }
}

/// The TLS stack used for a *pinned* connection; the `CustomNative` share
/// calibrates the §4.3 circumvention rates (≈51.5% Android / ≈66.2% iOS
/// hookable).
fn pinned_conn_library(rng: &mut SplitMix64, platform: Platform) -> TlsLibrary {
    let r = rng.next_f64();
    match platform {
        Platform::Android => {
            if r < 0.52 {
                TlsLibrary::CustomNative
            } else if r < 0.84 {
                TlsLibrary::OkHttp
            } else if r < 0.96 {
                TlsLibrary::Conscrypt
            } else {
                TlsLibrary::TrustKit
            }
        }
        Platform::Ios => {
            if r < 0.37 {
                TlsLibrary::CustomNative
            } else if r < 0.80 {
                TlsLibrary::NsUrlSession
            } else if r < 0.92 {
                TlsLibrary::AfNetworking
            } else {
                TlsLibrary::TrustKit
            }
        }
    }
}

fn unpinned_conn_library(rng: &mut SplitMix64, platform: Platform) -> TlsLibrary {
    let r = rng.next_f64();
    match platform {
        Platform::Android => {
            if r < 0.5 {
                TlsLibrary::OkHttp
            } else if r < 0.9 {
                TlsLibrary::Conscrypt
            } else {
                TlsLibrary::Cronet
            }
        }
        Platform::Ios => {
            if r < 0.85 {
                TlsLibrary::NsUrlSession
            } else {
                TlsLibrary::AfNetworking
            }
        }
    }
}

/// Launch offset distribution calibrated to the §4.2.1 sleep-time sweep
/// (≈84% of handshakes inside 15 s, ≈96% inside 30 s).
fn sample_at_secs(rng: &mut SplitMix64) -> u32 {
    let r = rng.next_f64();
    if r < 0.84 {
        rng.next_below(15) as u32
    } else if r < 0.96 {
        15 + rng.next_below(15) as u32
    } else {
        30 + rng.next_below(30) as u32
    }
}

/// Builds one platform's app for a product.
pub(crate) fn build_app(
    gen: &mut Generator<'_>,
    p: &Product,
    pi: usize,
    platform: Platform,
) -> MobileApp {
    let mut rng = gen.rng.derive(&format!("appgen/{pi}/{platform}"));
    // A product-shared stream for decisions that must agree across
    // platforms (synced SDK activation).
    let mut shared_rng = gen.rng.derive(&format!("appgen-shared/{pi}"));

    let plan = match platform {
        Platform::Android => p.android.as_ref().expect("plan exists"),
        Platform::Ios => p.ios.as_ref().expect("plan exists"),
    };
    let id = match platform {
        Platform::Android => AppId::new(platform, format!("com.{}.app", p.key)),
        Platform::Ios => AppId::new(platform, format!("id9{pi:08}")),
    };

    let rates = gen.config.rates(platform);
    let weak_app = rng.chance(rates.weak_cipher_app);
    // Common-dataset Android quirk (Table 8, italic row): cross-platform
    // Android pinning code disables weak suites *less* often.
    let weak_pinned_prob = if p.cross && platform == Platform::Android {
        0.22
    } else {
        rates.weak_cipher_pinned
    };

    let mut pin_rules: Vec<DomainPinRule> = Vec::new();
    // One TLS stack per pin rule (apps route a pinned backend through one
    // client object, not a random stack per request).
    let mut rule_library: Vec<TlsLibrary> = Vec::new();
    let mut connections: Vec<PlannedConnection> = Vec::new();
    let mut rule_for_domain: HashMap<String, usize> = HashMap::new();

    // --- First-party pin rules ---
    for domain in &plan.pinned {
        let server = gen
            .network
            .resolve(domain)
            .expect("first-party servers registered before app build");
        let chain = &server.chain;
        let is_custom = plan.custom_pki_domain.as_deref() == Some(domain.as_str())
            || plan.self_signed_domain.as_deref() == Some(domain.as_str());
        let target = if chain.len() == 1 {
            PinTarget::Leaf // self-signed has only a leaf
        } else if is_custom {
            PinTarget::Root
        } else {
            sample_pin_target(gen, &mut rng)
        };
        let cert: &Certificate = match target {
            PinTarget::Leaf => chain.leaf().expect("non-empty chain"),
            PinTarget::Intermediate => chain
                .intermediates()
                .first()
                .unwrap_or_else(|| chain.top().expect("chain")),
            PinTarget::Root => chain.top().expect("non-empty chain"),
        };
        let storage = sample_fp_storage(gen, &mut rng, platform, target);
        // §5.3.3: most leaf pins commit to the key (survive renewals);
        // raw-cert leaf pins usually compare keys too.
        let mut rule = match storage {
            PinStorage::RawCertAsset(fmt) => DomainPinRule::raw_cert(
                domain.clone(),
                cert,
                target,
                fmt,
                PinSource::FirstParty,
                rng.chance(0.8),
            ),
            _ => {
                let alg = match storage {
                    PinStorage::SpkiStringInCode(a) | PinStorage::SpkiStringInNativeLib(a) => a,
                    _ => PinAlgorithm::Sha256,
                };
                DomainPinRule::spki(
                    domain.clone(),
                    cert,
                    target,
                    alg,
                    storage,
                    PinSource::FirstParty,
                )
            }
        };
        if is_custom {
            rule = rule.with_custom_pki();
        }
        rule_for_domain.insert(domain.clone(), pin_rules.len());
        pin_rules.push(rule);
        rule_library.push(pinned_conn_library(&mut rng, platform));
    }

    // --- SDK rules + SDK connections ---
    let mut sdk_names_final = Vec::new();
    for name in &p.sdk_names {
        let Some(spec) = sdk::by_name(name) else {
            continue;
        };
        if !spec.available_on(platform) {
            continue;
        }
        sdk_names_final.push(name.to_string());
        let pinning = spec.pinning_on(platform);
        if let Some(pinning) = pinning {
            let domain = spec.domains[0];
            let server = gen.network.resolve(domain).expect("SDK servers registered");
            let chain = &server.chain;
            let cert = match pinning.target {
                PinTarget::Leaf => chain.leaf().expect("chain"),
                PinTarget::Intermediate => chain
                    .intermediates()
                    .first()
                    .unwrap_or_else(|| chain.top().expect("chain")),
                PinTarget::Root => chain.top().expect("chain"),
            };
            let mut rule = if pinning.ships_raw_cert {
                DomainPinRule::raw_cert(
                    domain,
                    cert,
                    pinning.target,
                    CertAssetFormat::Pem,
                    PinSource::Sdk(spec.name.to_string()),
                    true,
                )
            } else {
                DomainPinRule::spki(
                    domain,
                    cert,
                    pinning.target,
                    pinning.alg,
                    PinStorage::SpkiStringInCode(pinning.alg),
                    PinSource::Sdk(spec.name.to_string()),
                )
            };
            // Activation roll: synced across platforms for products whose
            // consistency profile requires it; suppressed entirely when the
            // profile must stay first-party-defined.
            let roll_rng = if plan.synced_sdk_rolls {
                &mut shared_rng
            } else {
                &mut rng
            };
            if plan.suppress_sdk_pinning || !roll_rng.chance(pinning.trigger_prob) {
                rule = rule.dead_code();
            }
            rule_for_domain.insert(domain.to_string(), pin_rules.len());
            pin_rules.push(rule);
            rule_library.push(spec.tls_on(platform));
        }
        // SDK traffic.
        for domain in spec.domains {
            let mut conn = PlannedConnection::simple(*domain, spec.tls_on(platform));
            conn.sends_sni = !rng.chance(0.01);
            conn.at_secs = sample_at_secs(&mut rng);
            conn.extra_bytes = 200 + rng.next_below(800) as usize;
            conn.redundant = rng.chance(gen.config.redundant_conn_prob);
            if let Some(&ri) = rule_for_domain.get(*domain) {
                conn.pin_rule = Some(ri);
                conn.library = rule_library[ri];
                conn.offers_weak_ciphers = rng.chance(weak_pinned_prob);
                conn.redundant = false;
            } else {
                conn.offers_weak_ciphers = weak_app && rng.chance(0.8);
            }
            // Analytics/ads SDKs carry the advertising id (more often than
            // first-party traffic when unpinned).
            let adid_p = if conn.pin_rule.is_some() {
                rates.adid_pinned
            } else {
                gen.config.adid_prob.0 * 1.6
            };
            if rng.chance(adid_p) {
                conn.pii.push(PiiType::AdvertisingId);
            }
            connections.push(conn);
        }
    }

    // --- First-party connections ---
    for domain in &plan.contacted {
        let n_conns = 1 + rng.next_below(2) as usize;
        for c in 0..n_conns {
            let rule_idx = rule_for_domain.get(domain).copied();
            let mut conn = PlannedConnection::simple(
                domain.clone(),
                unpinned_conn_library(&mut rng, platform),
            );
            conn.sends_sni = !rng.chance(0.01);
            conn.at_secs = if c == 0 {
                rng.next_below(8) as u32
            } else {
                sample_at_secs(&mut rng)
            };
            conn.extra_bytes = 300 + rng.next_below(1500) as usize;
            conn.pin_rule = rule_idx;
            if let Some(ri) = rule_idx {
                conn.library = rule_library[ri];
                conn.offers_weak_ciphers = rng.chance(weak_pinned_prob);
                conn.redundant = false;
            } else {
                conn.offers_weak_ciphers = weak_app && rng.chance(0.8);
                conn.redundant = c > 0 && rng.chance(gen.config.redundant_conn_prob);
            }
            let adid_p = if rule_idx.is_some() {
                rates.adid_pinned
            } else {
                gen.config.adid_prob.0
            };
            if rng.chance(adid_p) {
                conn.pii.push(PiiType::AdvertisingId);
            }
            if rng.chance(if rule_idx.is_some() { 0.004 } else { 0.012 }) {
                conn.pii.push(PiiType::Email);
            }
            if rng.chance(if rule_idx.is_some() { 0.0015 } else { 0.010 }) {
                conn.pii.push(PiiType::State);
            }
            if rule_idx.is_none() {
                if rng.chance(0.006) {
                    conn.pii.push(PiiType::City);
                }
                if rng.chance(0.0008) {
                    conn.pii.push(PiiType::LatLon);
                }
            }
            connections.push(conn);
        }
    }

    // --- Noise connections + padding toward the mean ---
    let n_noise = 2 + rng.next_below(3) as usize;
    for k in 0..n_noise {
        let d = NOISE_DOMAINS[(rng.next_below(NOISE_DOMAINS.len() as u64)) as usize];
        let mut conn = PlannedConnection::simple(d, unpinned_conn_library(&mut rng, platform));
        conn.at_secs = sample_at_secs(&mut rng);
        conn.redundant = k > 0 && rng.chance(gen.config.redundant_conn_prob);
        conn.offers_weak_ciphers = weak_app && rng.chance(0.8);
        if rng.chance(gen.config.adid_prob.0) {
            conn.pii.push(PiiType::AdvertisingId);
        }
        connections.push(conn);
    }
    let target = gen.config.mean_connections.saturating_sub(2) + rng.next_below(5) as usize;
    while connections.len() < target {
        let template = connections[rng.next_below(connections.len() as u64) as usize].clone();
        let mut conn = template;
        conn.at_secs = sample_at_secs(&mut rng);
        conn.redundant = rng.chance(gen.config.redundant_conn_prob) && conn.pin_rule.is_none();
        connections.push(conn);
    }

    // --- Interaction-gated connections (§4.2.1 / §6 future work) ---
    // Random-UI taps mostly re-contact domains already hit at launch (the
    // paper measured "no significant change in the number of domains
    // contacted"); logging in reaches a first-party domain.
    if !connections.is_empty() && rng.chance(0.35) {
        let extra = 1 + rng.next_below(3) as usize;
        for _ in 0..extra {
            let template = connections[rng.next_below(connections.len() as u64) as usize].clone();
            let mut conn = template;
            conn.at_secs = sample_at_secs(&mut rng);
            conn.requires_interaction = Interaction::RandomUi;
            connections.push(conn);
        }
    }
    if rng.chance(0.15) {
        let domain = plan.contacted.first().unwrap_or(&p.fp_domains[0]).clone();
        let rule_idx = rule_for_domain.get(&domain).copied();
        let mut conn = PlannedConnection::simple(domain, unpinned_conn_library(&mut rng, platform));
        conn.requires_interaction = Interaction::Login;
        conn.pin_rule = rule_idx;
        if let Some(ri) = rule_idx {
            conn.library = rule_library[ri];
        }
        conn.pii = vec![PiiType::Email];
        conn.at_secs = 3 + rng.next_below(20) as u32;
        connections.push(conn);
    }

    // --- Associated domains (iOS) ---
    let associated_domains =
        if platform == Platform::Ios && rng.chance(gen.config.associated_domain_prob) {
            let mut doms: Vec<String> = p.fp_domains.clone();
            let extra = rng.next_below(5) as usize;
            for e in 0..extra {
                let d = format!("link{e}.{}", p.base_domain);
                if !gen.network.has_host(&d) {
                    gen.register_public_server(vec![d.clone()], &p.org);
                }
                doms.push(d);
            }
            doms.truncate(1 + rng.next_below(8) as usize);
            doms
        } else {
            Vec::new()
        };

    // --- Decoy certificates (static-analysis noise) ---
    let rank_score = match platform {
        Platform::Android => p.rank_score_android,
        Platform::Ios => p.rank_score_ios,
    };
    let mut decoy_prob = if rank_score < 0.12 {
        rates.decoy_cert_popular
    } else if rank_score < 0.35 {
        (rates.decoy_cert_popular + rates.decoy_cert_tail) / 2.0
    } else {
        rates.decoy_cert_tail
    };
    if p.cross {
        // Table 3's asymmetry: Common-Android packages carry *more*
        // non-pinning certificate baggage than the charts, Common-iOS less.
        decoy_prob *= match platform {
            Platform::Android => 2.2,
            Platform::Ios => 0.85,
        };
    }
    let decoy_certs: Vec<Certificate> = if rng.chance(decoy_prob) {
        let n = 1 + rng.next_below(3) as usize;
        let roots = gen.universe.public_roots();
        (0..n)
            .map(|_| {
                roots[rng.next_below(roots.len() as u64) as usize]
                    .cert
                    .clone()
            })
            .collect()
    } else {
        Vec::new()
    };

    // --- Package build ---
    let sdk_specs: Vec<&'static SdkSpec> = sdk_names_final
        .iter()
        .filter_map(|n| sdk::by_name(n))
        .collect();
    let nsc_misconfig = platform == Platform::Android && rng.chance(gen.config.nsc_misconfig_prob);
    let uses_nsc = nsc_misconfig || pin_rules.iter().any(|r| r.storage == PinStorage::NscPinSet);
    let spec = BuildSpec {
        id: &id,
        app_name: &p.name,
        sdks: &sdk_specs,
        pin_rules: &pin_rules,
        decoy_certs: &decoy_certs,
        nsc_misconfig_override_pins: nsc_misconfig,
        associated_domains: &associated_domains,
        ios_encryption_seed: (platform == Platform::Ios).then_some(gen.config.ios_encryption_seed),
    };
    let mut pkg_rng = rng.derive("pkg");
    let package = build_package(&spec, &mut pkg_rng);

    MobileApp {
        id,
        product_key: p.key.clone(),
        name: p.name.clone(),
        developer_org: p.org.clone(),
        category: p.category,
        popularity_rank: 0, // assigned after listing sort
        sdk_names: sdk_names_final,
        pin_rules,
        first_party_domains: p.fp_domains.clone(),
        associated_domains,
        uses_nsc,
        behavior: AppBehavior { connections },
        package,
    }
}

/// Silences the unused-import lint for `Interaction`, which is part of the
/// public behaviour API exercised elsewhere.
const _: fn(Interaction) -> bool = |i| matches!(i, Interaction::None);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_sampling_covers_all_variants() {
        let mut rng = SplitMix64::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(sample_profile(&mut rng));
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn at_secs_distribution_shape() {
        let mut rng = SplitMix64::new(2);
        let samples: Vec<u32> = (0..10_000).map(|_| sample_at_secs(&mut rng)).collect();
        let within15 = samples.iter().filter(|&&s| s < 15).count() as f64 / 10_000.0;
        let within30 = samples.iter().filter(|&&s| s < 30).count() as f64 / 10_000.0;
        assert!((0.80..0.88).contains(&within15), "{within15}");
        assert!((0.93..0.99).contains(&within30), "{within30}");
        assert!(samples.iter().all(|&s| s < 60));
    }

    #[test]
    fn weighted_category_respects_table() {
        let mut rng = SplitMix64::new(3);
        let games = (0..2000)
            .filter(|_| weighted_category(HEAD_CATEGORY_WEIGHTS, &mut rng) == Category::Games)
            .count();
        // Games weight 34 of ~100 total.
        assert!((500..900).contains(&games), "{games}");
    }

    #[test]
    fn pinned_library_mix_hookability() {
        let mut rng = SplitMix64::new(4);
        let n = 10_000;
        let hookable_android = (0..n)
            .filter(|_| pinned_conn_library(&mut rng, Platform::Android).frida_hookable())
            .count() as f64
            / n as f64;
        let hookable_ios = (0..n)
            .filter(|_| pinned_conn_library(&mut rng, Platform::Ios).frida_hookable())
            .count() as f64
            / n as f64;
        // Shares are calibrated to §4.3's destination-level circumvention
        // rates (≈51.5% Android, ≈66.2% iOS).
        assert!(
            (0.44..0.54).contains(&hookable_android),
            "{hookable_android}"
        );
        assert!((0.58..0.68).contains(&hookable_ios), "{hookable_ios}");
    }
}
