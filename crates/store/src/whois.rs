//! Domain-ownership registry: the whois/certificate-subject stand-in used
//! for first-party vs third-party attribution (Figure 5's coloring).

use std::collections::HashMap;

/// First- or third-party, relative to a given app.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Party {
    /// The destination belongs to the app's developer.
    First,
    /// The destination belongs to someone else (SDK vendors, CDNs, ads).
    Third,
}

/// Registry mapping a domain to its operating organization.
///
/// The paper attributes each domain "using various points of information
/// (whois data, certificate subject names, etc.)" (§5.2); here the world
/// generator records the operating organization at server-registration
/// time, and attribution compares it to the app's developer organization
/// with light normalization — imperfect matching is part of the realism.
#[derive(Debug, Clone, Default)]
pub struct WhoisRegistry {
    by_domain: HashMap<String, String>,
}

impl WhoisRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `domain` as operated by `organization`.
    pub fn record(&mut self, domain: &str, organization: &str) {
        self.by_domain
            .insert(domain.to_ascii_lowercase(), organization.to_string());
    }

    /// Looks up the operator of `domain`.
    pub fn operator(&self, domain: &str) -> Option<&str> {
        self.by_domain
            .get(&domain.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Attributes `domain` relative to an app developer organization.
    /// Unknown domains default to third-party (the conservative choice the
    /// paper makes too).
    pub fn attribute(&self, developer_org: &str, domain: &str) -> Party {
        match self.operator(domain) {
            Some(op) if normalize(op) == normalize(developer_org) => Party::First,
            _ => Party::Third,
        }
    }

    /// Number of known domains.
    pub fn len(&self) -> usize {
        self.by_domain.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.by_domain.is_empty()
    }
}

fn normalize(org: &str) -> String {
    org.to_ascii_lowercase()
        .replace([',', '.'], "")
        .split_whitespace()
        .filter(|w| !matches!(*w, "inc" | "llc" | "ltd" | "corp" | "gmbh" | "co"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_exact() {
        let mut w = WhoisRegistry::new();
        w.record("api.shop.com", "Shop Inc.");
        assert_eq!(w.attribute("Shop Inc.", "api.shop.com"), Party::First);
        assert_eq!(w.attribute("Other Corp", "api.shop.com"), Party::Third);
    }

    #[test]
    fn attribution_normalizes_suffixes() {
        let mut w = WhoisRegistry::new();
        w.record("api.shop.com", "Shop, Inc.");
        assert_eq!(w.attribute("shop", "api.shop.com"), Party::First);
        assert_eq!(w.attribute("SHOP LLC", "api.shop.com"), Party::First);
    }

    #[test]
    fn unknown_is_third_party() {
        let w = WhoisRegistry::new();
        assert_eq!(w.attribute("Shop", "mystery.io"), Party::Third);
    }

    #[test]
    fn case_insensitive_lookup() {
        let mut w = WhoisRegistry::new();
        w.record("CDN.Example.COM", "Example");
        assert_eq!(w.operator("cdn.example.com"), Some("Example"));
    }
}
