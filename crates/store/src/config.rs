//! World-generation configuration: every calibration knob in one place.
//!
//! The probabilities here are *inputs* chosen so that the measurement
//! pipeline's *outputs* land near the paper's reported values; they are
//! documented with the table/section they calibrate. EXPERIMENTS.md records
//! paper-vs-measured for each.

/// Per-platform pinning-probability knobs.
#[derive(Debug, Clone)]
pub struct PinningRates {
    /// First-party pinning probability for top-chart apps (calibrates
    /// Table 3 "Popular" dynamic rows, together with SDK pinning).
    pub first_party_popular: f64,
    /// First-party pinning probability for tail (random) apps.
    pub first_party_tail: f64,
    /// Multiplier applied for data-sensitive categories (Tables 4/5 put
    /// Finance at ~3× the base rate).
    pub sensitive_category_boost: f64,
    /// Probability that an app's ClientHello list includes weak ciphers
    /// (Table 8 "Overall": ~93% iOS, ~8–18% Android).
    pub weak_cipher_app: f64,
    /// Same, but for connections governed by a pin rule (Table 8 "Pinning
    /// apps": pinning code paths usually configure TLS deliberately).
    pub weak_cipher_pinned: f64,
    /// Probability that a *popular* app embeds decoy certificates unrelated
    /// to pinning (CA bundles, license certs) — the static over-count of
    /// Table 3.
    pub decoy_cert_popular: f64,
    /// Same for tail (random) apps, which ship fewer SDKs and assets.
    pub decoy_cert_tail: f64,
    /// Probability that a *pinned* connection carries the advertising id
    /// (Table 9: higher on iOS, where the paper found the difference
    /// statistically significant).
    pub adid_pinned: f64,
}

/// All world-generation knobs.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Apps per platform in the whole store (sampling frame).
    pub store_size: usize,
    /// Cross-platform products (the AlternativeTo-linkable population).
    pub n_cross_products: usize,
    /// Dataset sizes, mirroring §3.
    pub common_size: usize,
    /// Popular dataset size per platform.
    pub popular_size: usize,
    /// Random dataset size per platform.
    pub random_size: usize,
    /// Fraction of the store that counts as "top charts" — the pool the
    /// Popular dataset samples from (the paper drew 1,000 from ≈12k chart
    /// entries of a much larger store).
    pub popular_pool_fraction: f64,
    /// Android knobs.
    pub android: PinningRates,
    /// iOS knobs.
    pub ios: PinningRates,
    /// Probability an Android app ships the Possemato-style NSC
    /// `overridePins` misconfiguration.
    pub nsc_misconfig_prob: f64,
    /// Probability a pinning app hides its pins from static analysis
    /// (obfuscation/runtime construction, §5.6 limitations).
    pub obfuscated_pin_prob: f64,
    /// Of Android pinning apps, the share whose pin channel is NSC
    /// (Table 3: NSC finds ~¼ of what dynamic analysis finds).
    pub nsc_share_android: f64,
    /// Probability a first-party pin targets a custom-PKI destination
    /// (Table 6: 4/178 Android, 1/253 iOS pinned destinations).
    pub custom_pki_prob: f64,
    /// Pin-target mix among pin rules: (root, intermediate, leaf) weights
    /// (§5.3.2 finds ~73% CA pins vs 27% leaf).
    pub pin_target_weights: (u32, u32, u32),
    /// Probability an iOS app declares associated domains (§4.5: 34%).
    pub associated_domain_prob: f64,
    /// Probability a planned connection is opened but never used
    /// (the redundant-connection confounder, §4.2.2).
    pub redundant_conn_prob: f64,
    /// Mean planned connections per app (calibrates the §4.2.1 sleep-time
    /// handshake counts: 20.78 / 23.5 / 24.62 at 15/30/60 s).
    pub mean_connections: usize,
    /// Probability that a non-pinned connection carries the advertising id
    /// (the pinned-side probability is per-platform, in [`PinningRates`]).
    pub adid_prob: (f64, f64),
    /// Per-domain server flakiness (1 − reliability).
    pub server_flakiness: f64,
    /// Share of servers stuck on TLS 1.2.
    pub tls12_server_share: f64,
    /// Fraction of publicly-issued leaf certificates submitted to the CT
    /// log (§4.1.3 resolved ~50% of pins via crt.sh).
    pub ct_leaf_coverage: f64,
    /// Fraction of CA certificates indexed by the CT search (crt.sh's
    /// SPKI index is not exhaustive for CA material either).
    pub ct_ca_coverage: f64,
    /// FairPlay key for iOS store downloads.
    pub ios_encryption_seed: u64,
    /// Number of adversarial apps planted outside the store listings:
    /// apps whose servers present pathological chains (cycles, 50-deep
    /// chains, giant SAN lists, stacked wildcards) or whose packages
    /// carry garbage certificate assets / fake-PEM NSC files. `0` (the
    /// default everywhere) leaves the world byte-identical to earlier
    /// revisions; the robustness experiments set it explicitly.
    pub adversarial_apps: usize,
}

impl WorldConfig {
    /// Paper-scale world: big enough that all six datasets draw without
    /// replacement and percentages stabilize.
    pub fn paper_scale(seed: u64) -> Self {
        WorldConfig {
            seed,
            store_size: 10_000,
            n_cross_products: 800,
            common_size: 575,
            popular_size: 1000,
            random_size: 1000,
            popular_pool_fraction: 0.12,
            android: PinningRates {
                first_party_popular: 0.023,
                first_party_tail: 0.0012,
                sensitive_category_boost: 3.2,
                weak_cipher_app: 0.12,
                weak_cipher_pinned: 0.04,
                decoy_cert_popular: 0.12,
                decoy_cert_tail: 0.062,
                adid_pinned: 0.19,
            },
            ios: PinningRates {
                first_party_popular: 0.125,
                first_party_tail: 0.0035,
                sensitive_category_boost: 2.8,
                weak_cipher_app: 0.92,
                weak_cipher_pinned: 0.50,
                decoy_cert_popular: 0.30,
                decoy_cert_tail: 0.022,
                adid_pinned: 0.26,
            },
            nsc_misconfig_prob: 0.008,
            obfuscated_pin_prob: 0.06,
            nsc_share_android: 0.20,
            custom_pki_prob: 0.03,
            pin_target_weights: (60, 13, 27),
            associated_domain_prob: 0.34,
            redundant_conn_prob: 0.15,
            mean_connections: 24,
            adid_prob: (0.14, 0.22),
            server_flakiness: 0.004,
            tls12_server_share: 0.30,
            ct_leaf_coverage: 0.42,
            ct_ca_coverage: 0.52,
            ios_encryption_seed: 0xFA1A_9AE5_EED5_0001,
            adversarial_apps: 0,
        }
    }

    /// A miniature world for unit tests and doctests: same structure, two
    /// orders of magnitude smaller.
    pub fn tiny(seed: u64) -> Self {
        WorldConfig {
            store_size: 60,
            n_cross_products: 16,
            common_size: 10,
            popular_size: 20,
            random_size: 20,
            ..Self::paper_scale(seed)
        }
    }

    /// Pinning rates for `platform`.
    pub fn rates(&self, platform: pinning_app::platform::Platform) -> &PinningRates {
        match platform {
            pinning_app::platform::Platform::Android => &self.android,
            pinning_app::platform::Platform::Ios => &self.ios,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_app::platform::Platform;

    #[test]
    fn paper_scale_is_consistent() {
        let c = WorldConfig::paper_scale(1);
        assert!(c.store_size >= c.popular_size + c.random_size);
        assert!(c.n_cross_products >= c.common_size);
        assert!(c.ios.first_party_popular > c.android.first_party_popular);
    }

    #[test]
    fn tiny_preserves_rates() {
        let c = WorldConfig::tiny(1);
        assert_eq!(
            c.android.first_party_popular,
            WorldConfig::paper_scale(1).android.first_party_popular
        );
        assert!(c.store_size < 100);
    }

    #[test]
    fn rates_accessor() {
        let c = WorldConfig::paper_scale(1);
        assert_eq!(
            c.rates(Platform::Ios).weak_cipher_app,
            c.ios.weak_cipher_app
        );
        assert_eq!(
            c.rates(Platform::Android).weak_cipher_app,
            c.android.weak_cipher_app
        );
    }
}
