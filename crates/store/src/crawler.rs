//! Store-crawl simulation: provenance and politeness accounting.
//!
//! The paper's collection pipeline had real mechanics worth reproducing:
//! AlternativeTo was crawled at 1 page/second with a contact e-mail in the
//! User-Agent (§3, §7); the iTunes Search API returns at most 100 results
//! per call; iOS app downloads were semi-automated and rate-limited by GUI
//! automation. The crawler model tracks pages fetched and virtual elapsed
//! time so dataset provenance is auditable.

use crate::world::World;
use pinning_app::platform::Platform;

/// A crawl's politeness/provenance record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrawlReport {
    /// What was crawled.
    pub source: String,
    /// Requests issued.
    pub requests: usize,
    /// Items retrieved.
    pub items: usize,
    /// Virtual seconds the crawl took under the rate limit.
    pub virtual_secs: u64,
    /// User-Agent used (the paper embedded contact info, §7).
    pub user_agent: String,
}

/// Rate limits used by the simulated crawls.
#[derive(Debug, Clone, Copy)]
pub struct RateLimit {
    /// Max requests per second.
    pub requests_per_sec: f64,
    /// Items returned per request.
    pub page_size: usize,
}

impl RateLimit {
    /// The AlternativeTo crawl: 1 page/second, 20 items/page.
    pub const ALTERNATIVETO: RateLimit = RateLimit {
        requests_per_sec: 1.0,
        page_size: 20,
    };
    /// The iTunes Search API: 100 results per call, 20 calls/minute.
    pub const ITUNES_SEARCH: RateLimit = RateLimit {
        requests_per_sec: 0.33,
        page_size: 100,
    };
    /// Play-store chart scraping.
    pub const PLAY_CHARTS: RateLimit = RateLimit {
        requests_per_sec: 0.5,
        page_size: 50,
    };
}

fn crawl(source: &str, n_items: usize, limit: RateLimit) -> CrawlReport {
    let requests = n_items.div_ceil(limit.page_size);
    let virtual_secs = (requests as f64 / limit.requests_per_sec).ceil() as u64;
    CrawlReport {
        source: source.to_string(),
        requests,
        items: n_items,
        virtual_secs,
        user_agent: "app-tls-pinning-study/1.0 (contact: research@example.edu)".to_string(),
    }
}

/// Simulates the AlternativeTo crawl that seeds the Common dataset: pages
/// of cross-listed products, sorted by popularity, until `target` products
/// with links to both stores are found.
pub fn crawl_alternativeto(world: &World, target: usize) -> (Vec<String>, CrawlReport) {
    let mut found = Vec::new();
    let mut scanned = 0usize;
    for key in &world.alternativeto {
        scanned += 1;
        let (a, i) = world.products[key];
        if a.is_some() && i.is_some() {
            found.push(key.clone());
            if found.len() >= target {
                break;
            }
        }
    }
    let report = crawl("alternativeto.net", scanned, RateLimit::ALTERNATIVETO);
    (found, report)
}

/// Simulates crawling a store's top charts.
pub fn crawl_top_charts(
    world: &World,
    platform: Platform,
    depth: usize,
) -> (Vec<usize>, CrawlReport) {
    let listing = world.listing(platform);
    let take = depth.min(listing.len());
    let items: Vec<usize> = listing[..take].to_vec();
    let limit = match platform {
        Platform::Android => RateLimit::PLAY_CHARTS,
        Platform::Ios => RateLimit::ITUNES_SEARCH,
    };
    let source = match platform {
        Platform::Android => "play.google.com/top-free",
        Platform::Ios => "itunes.apple.com/search",
    };
    let report = crawl(source, take, limit);
    (items, report)
}

/// Appendix A's iOS collection pipeline: app downloads are driven through
/// GUI automation of the deprecated iTunes 12.6 client, and the session
/// periodically breaks (re-authentication prompts, stuck downloads) and
/// needs a human. "The inability to download apps in a fully unattended
/// way is the main reason we restricted the scale of our analysis to
/// thousands of iOS apps."
#[derive(Debug, Clone)]
pub struct IosDownloadSession {
    /// Apps downloaded so far.
    pub downloaded: usize,
    /// Manual interventions (re-auth, retry) that were required.
    pub manual_interventions: usize,
    /// Virtual seconds elapsed.
    pub virtual_secs: u64,
    /// Mean downloads between breakages.
    mean_between_failures: u64,
    /// Seconds per successful GUI-automated download.
    secs_per_download: u64,
    /// Seconds a human needs per intervention.
    secs_per_intervention: u64,
    rng: pinning_crypto::SplitMix64,
}

impl IosDownloadSession {
    /// A session with Appendix-A-flavoured parameters: ~40 s per download,
    /// a breakage roughly every 60 downloads, ~5 minutes of human time per
    /// intervention.
    pub fn new(seed: u64) -> Self {
        IosDownloadSession {
            downloaded: 0,
            manual_interventions: 0,
            virtual_secs: 0,
            mean_between_failures: 60,
            secs_per_download: 40,
            secs_per_intervention: 300,
            rng: pinning_crypto::SplitMix64::new(seed).derive("itunes"),
        }
    }

    /// Downloads `n` apps, simulating interruptions; returns the crawl
    /// report for the batch.
    pub fn download(&mut self, n: usize) -> CrawlReport {
        for _ in 0..n {
            self.virtual_secs += self.secs_per_download;
            self.downloaded += 1;
            if self.rng.chance(1.0 / self.mean_between_failures as f64) {
                self.manual_interventions += 1;
                self.virtual_secs += self.secs_per_intervention;
            }
        }
        CrawlReport {
            source: "iTunes 12.6 GUI automation".to_string(),
            requests: n,
            items: n,
            virtual_secs: self.virtual_secs,
            user_agent: "iTunes/12.6 (semi-automated; research account)".to_string(),
        }
    }

    /// Whether the session could run unattended (it never can, which is
    /// Appendix A's point).
    pub fn fully_unattended(&self) -> bool {
        self.manual_interventions == 0 && self.downloaded < self.mean_between_failures as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::tiny(0x44))
    }

    #[test]
    fn alternativeto_crawl_finds_cross_products() {
        let w = world();
        let (found, report) = crawl_alternativeto(&w, w.config.common_size);
        assert_eq!(found.len(), w.config.common_size);
        assert!(report.requests >= 1);
        assert!(
            report.user_agent.contains('@'),
            "contact info required by §7"
        );
        // 1 page/sec politeness: virtual time ≥ number of requests.
        assert!(report.virtual_secs >= report.requests as u64);
    }

    #[test]
    fn chart_crawl_returns_rank_order() {
        let w = world();
        let (items, _) = crawl_top_charts(&w, Platform::Android, 10);
        for pair in items.windows(2) {
            assert!(w.apps[pair[0]].popularity_rank < w.apps[pair[1]].popularity_rank);
        }
    }

    #[test]
    fn ios_downloads_need_humans_at_scale() {
        let mut session = IosDownloadSession::new(7);
        let report = session.download(2500); // the study's iOS corpus size
        assert_eq!(session.downloaded, 2500);
        assert!(
            session.manual_interventions > 10,
            "a thousands-scale crawl requires many interventions: {}",
            session.manual_interventions
        );
        assert!(!session.fully_unattended());
        // Wall-clock dominated by downloads, inflated by interventions.
        assert!(report.virtual_secs > 2500 * 40);
    }

    #[test]
    fn tiny_ios_batch_may_run_unattended() {
        let mut session = IosDownloadSession::new(1);
        session.download(3);
        // Small batches usually (not always) avoid interruptions; the
        // deterministic seed here happens to.
        assert!(session.downloaded == 3);
    }

    #[test]
    fn itunes_pagesize_is_100() {
        let w = world();
        let (_, report) = crawl_top_charts(&w, Platform::Ios, 20);
        assert_eq!(report.requests, 1); // 20 items fit in one 100-item call
    }
}
