//! The app-store ecosystem: world generation, store listings, crawler
//! simulation, and dataset construction.
//!
//! This crate plays the role of §3 ("Datasets") plus the invisible hand
//! behind it — the actual population of apps the stores contain. The
//! [`world::World`] generator plants *ground truth* (which apps pin what,
//! where the artifacts live, which destinations serve which chains) with
//! distributions calibrated to the paper's findings; the
//! [`datasets`] module then draws the paper's six datasets (Common /
//! Popular / Random × Android / iOS) from store listings the same way the
//! authors did (AlternativeTo cross-listing, top-free charts, random ids).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod crawler;
pub mod datasets;
pub mod intern;
pub mod shard;
pub mod whois;
pub mod world;

pub use config::WorldConfig;
pub use datasets::{Dataset, DatasetKind};
pub use whois::{Party, WhoisRegistry};
pub use world::{HostileKind, World};
