//! Certificate interning: one canonical copy per unique certificate.
//!
//! World generation issues thousands of server chains, and almost all of
//! them embed the same few dozen CA certificates. Each [`Certificate`]
//! clone shares its lazily-derived values (DER bytes, fingerprint, SPKI
//! digests, pin string) through one reference-counted cell, so interning
//! CA material has two effects: every chain in the network points at the
//! *same* derived-value cell for a given CA, and the warm-up pass below
//! pays each derivation exactly once per unique certificate instead of
//! once per independently-constructed copy (e.g. certs rebuilt from DER
//! or PEM, whose caches start cold).

use pinning_pki::chain::CertificateChain;
use pinning_pki::Certificate;
use std::collections::HashMap;
use std::sync::Arc;

/// A fingerprint-keyed pool of canonical certificates.
#[derive(Debug, Default)]
pub struct CertInterner {
    by_fp: HashMap<[u8; 32], Arc<Certificate>>,
    deduplicated: usize,
}

impl CertInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the canonical copy of `cert`, inserting it if unseen.
    /// Clones of the returned certificate share one derived-value cell, so
    /// a fingerprint or SPKI digest computed through any copy is visible to
    /// all of them.
    pub fn intern(&mut self, cert: &Certificate) -> Arc<Certificate> {
        let fp = cert.fingerprint_sha256();
        match self.by_fp.entry(fp) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.deduplicated += 1;
                Arc::clone(e.get())
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                Arc::clone(e.insert(Arc::new(cert.clone())))
            }
        }
    }

    /// Rewrites a chain's CA certificates (everything above the leaf) to
    /// canonical-sharing copies.
    pub fn intern_chain_cas(&mut self, chain: &mut CertificateChain) {
        for cert in chain.certs_mut().iter_mut().skip(1) {
            *cert = self.intern(cert).as_ref().clone();
        }
    }

    /// The canonical certificate for a fingerprint, if interned.
    pub fn canonical(&self, fp: &[u8; 32]) -> Option<&Arc<Certificate>> {
        self.by_fp.get(fp)
    }

    /// Number of unique certificates interned.
    pub fn unique(&self) -> usize {
        self.by_fp.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_fp.is_empty()
    }

    /// How many intern calls were answered by an existing canonical copy.
    pub fn deduplicated(&self) -> usize {
        self.deduplicated
    }

    /// Precomputes every derived value of every canonical certificate, so
    /// later consumers (validation, pin matching, CT submission) never pay
    /// a DER encode or digest on a shared certificate.
    pub fn warm(&self) {
        for cert in self.by_fp.values() {
            let _ = cert.der_bytes();
            let _ = cert.fingerprint_sha256();
            let _ = cert.spki_sha256();
            let _ = cert.spki_sha1();
            let _ = cert.spki_pin_string();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_crypto::sig::KeyPair;
    use pinning_crypto::SplitMix64;
    use pinning_pki::authority::CertificateAuthority;
    use pinning_pki::name::DistinguishedName;
    use pinning_pki::time::{SimTime, Validity, YEAR};

    fn chain() -> CertificateChain {
        let mut rng = SplitMix64::new(0x17e2);
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("Root", "Sim", "US"),
            &mut rng,
            SimTime(0),
        );
        let key = KeyPair::generate(&mut rng);
        let leaf = root.issue_leaf(
            &["a.example".to_string()],
            "Org",
            &key,
            Validity::starting(SimTime(0), YEAR),
        );
        CertificateChain::new(vec![leaf, root.cert.clone()])
    }

    #[test]
    fn interning_dedups_by_fingerprint() {
        let mut pool = CertInterner::new();
        let c = chain();
        let a = pool.intern(&c.certs()[1]);
        let b = pool.intern(&c.certs()[1].clone());
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(pool.unique(), 1);
        assert_eq!(pool.deduplicated(), 1);
    }

    #[test]
    fn interned_chains_are_equal_and_share_roots() {
        let mut pool = CertInterner::new();
        let original = chain();
        let mut a = original.clone();
        let mut b = original.clone();
        pool.intern_chain_cas(&mut a);
        pool.intern_chain_cas(&mut b);
        pool.warm();
        assert_eq!(a.certs(), original.certs());
        assert_eq!(b.certs(), original.certs());
        assert_eq!(pool.unique(), 1, "leaf is not interned, root is shared");
        assert!(pool
            .canonical(&original.certs()[1].fingerprint_sha256())
            .is_some());
    }
}
