//! Dataset construction (§3): Common, Popular, Random × Android, iOS.

use crate::world::World;
use pinning_app::platform::Platform;
use pinning_crypto::SplitMix64;
use std::collections::HashSet;

/// The three dataset families of §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DatasetKind {
    /// Apps present on both platforms, linked via the AlternativeTo-style
    /// cross listing (n = 575 in the paper).
    Common,
    /// Top-chart apps (n = 1,000 per platform).
    Popular,
    /// Uniformly random store apps (n = 1,000 per platform).
    Random,
}

impl DatasetKind {
    /// All kinds, in the paper's presentation order.
    pub const ALL: [DatasetKind; 3] = [
        DatasetKind::Common,
        DatasetKind::Popular,
        DatasetKind::Random,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            DatasetKind::Common => "Common",
            DatasetKind::Popular => "Popular",
            DatasetKind::Random => "Random",
        }
    }
}

impl core::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// One concrete dataset: a set of app indices into `world.apps`.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which family.
    pub kind: DatasetKind,
    /// Which platform.
    pub platform: Platform,
    /// Indices into `World::apps`.
    pub app_indices: Vec<usize>,
}

impl Dataset {
    /// Number of apps.
    pub fn len(&self) -> usize {
        self.app_indices.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.app_indices.is_empty()
    }
}

/// Builds all six datasets from a world, reproducing §3's sampling:
///
/// * **Common** — the top `common_size` AlternativeTo cross products that
///   exist on both stores contribute their Android and iOS apps;
/// * **Popular** — a random sample of `popular_size` from each store's top
///   charts (the paper sampled 1,000 from ≈12k top-list entries; we sample
///   from the top 30% of the store);
/// * **Random** — a uniform sample of `random_size` from the full store
///   id list.
pub fn build_datasets(world: &World) -> Vec<Dataset> {
    let cfg = &world.config;
    let mut out = Vec::with_capacity(6);

    // Common: both platform apps of the top cross products.
    let mut common_android = Vec::new();
    let mut common_ios = Vec::new();
    for key in world.alternativeto.iter() {
        if common_android.len() >= cfg.common_size {
            break;
        }
        let (a, i) = world.products[key];
        if let (Some(a), Some(i)) = (a, i) {
            common_android.push(a);
            common_ios.push(i);
        }
    }
    out.push(Dataset {
        kind: DatasetKind::Common,
        platform: Platform::Android,
        app_indices: common_android,
    });
    out.push(Dataset {
        kind: DatasetKind::Common,
        platform: Platform::Ios,
        app_indices: common_ios,
    });

    for platform in Platform::BOTH {
        let listing = world.listing(platform);
        let mut rng =
            SplitMix64::new(cfg.seed ^ 0x9e37_79b9 ^ (platform as u64) << 32).derive("datasets");

        // Popular: sample from the top charts — a small head of the store,
        // mirroring the paper's 1,000-of-≈12k chart draw.
        let head_len = ((listing.len() as f64 * cfg.popular_pool_fraction) as usize)
            .max(cfg.popular_size.min(listing.len()));
        let mut head: Vec<usize> = listing[..head_len.min(listing.len())].to_vec();
        rng.shuffle(&mut head);
        head.truncate(cfg.popular_size);
        out.push(Dataset {
            kind: DatasetKind::Popular,
            platform,
            app_indices: head,
        });

        // Random: uniform over the full store.
        let mut all: Vec<usize> = listing.to_vec();
        rng.shuffle(&mut all);
        all.truncate(cfg.random_size);
        out.push(Dataset {
            kind: DatasetKind::Random,
            platform,
            app_indices: all,
        });
    }
    out.sort_by_key(|d| (d.kind, d.platform));
    out
}

/// Collision accounting (§3): unique apps per platform after dedup across
/// datasets, plus per-pair collision counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollisionReport {
    /// Unique Android apps across all Android datasets.
    pub unique_android: usize,
    /// Unique iOS apps.
    pub unique_ios: usize,
    /// Common ∩ Popular per platform (Android, iOS).
    pub common_popular: (usize, usize),
    /// Random ∩ (Common ∪ Popular) per platform.
    pub random_overlap: (usize, usize),
    /// Grand total of unique apps, counting platforms separately.
    pub total_unique: usize,
}

/// Computes the collision report for a dataset collection.
pub fn collision_report(datasets: &[Dataset]) -> CollisionReport {
    let collect = |kind: DatasetKind, platform: Platform| -> HashSet<usize> {
        datasets
            .iter()
            .filter(|d| d.kind == kind && d.platform == platform)
            .flat_map(|d| d.app_indices.iter().copied())
            .collect()
    };
    let mut unique = [0usize; 2];
    let mut common_popular = (0, 0);
    let mut random_overlap = (0, 0);
    for (k, platform) in Platform::BOTH.into_iter().enumerate() {
        let common = collect(DatasetKind::Common, platform);
        let popular = collect(DatasetKind::Popular, platform);
        let random = collect(DatasetKind::Random, platform);
        let cp = common.intersection(&popular).count();
        let cup: HashSet<usize> = common.union(&popular).copied().collect();
        let ro = random.intersection(&cup).count();
        unique[k] = cup.union(&random).count();
        if platform == Platform::Android {
            common_popular.0 = cp;
            random_overlap.0 = ro;
        } else {
            common_popular.1 = cp;
            random_overlap.1 = ro;
        }
    }
    CollisionReport {
        unique_android: unique[0],
        unique_ios: unique[1],
        common_popular,
        random_overlap,
        total_unique: unique[0] + unique[1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::tiny(0x99))
    }

    #[test]
    fn six_datasets_with_requested_sizes() {
        let w = world();
        let ds = build_datasets(&w);
        assert_eq!(ds.len(), 6);
        for d in &ds {
            let expected = match d.kind {
                DatasetKind::Common => w.config.common_size,
                DatasetKind::Popular => w.config.popular_size,
                DatasetKind::Random => w.config.random_size,
            };
            assert_eq!(d.len(), expected, "{:?} {:?}", d.kind, d.platform);
        }
    }

    #[test]
    fn common_pairs_same_products() {
        let w = world();
        let ds = build_datasets(&w);
        let ca = ds
            .iter()
            .find(|d| d.kind == DatasetKind::Common && d.platform == Platform::Android)
            .unwrap();
        let ci = ds
            .iter()
            .find(|d| d.kind == DatasetKind::Common && d.platform == Platform::Ios)
            .unwrap();
        for (&a, &i) in ca.app_indices.iter().zip(&ci.app_indices) {
            assert_eq!(w.apps[a].product_key, w.apps[i].product_key);
            assert_eq!(w.apps[a].id.platform, Platform::Android);
            assert_eq!(w.apps[i].id.platform, Platform::Ios);
        }
    }

    #[test]
    fn datasets_only_contain_platform_apps() {
        let w = world();
        for d in build_datasets(&w) {
            for &i in &d.app_indices {
                assert_eq!(w.apps[i].id.platform, d.platform);
            }
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let w = world();
        let a = build_datasets(&w);
        let b = build_datasets(&w);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.app_indices, y.app_indices);
        }
    }

    #[test]
    fn collision_report_totals() {
        let w = world();
        let ds = build_datasets(&w);
        let rep = collision_report(&ds);
        assert!(
            rep.unique_android
                <= w.config.common_size + w.config.popular_size + w.config.random_size
        );
        assert_eq!(rep.total_unique, rep.unique_android + rep.unique_ios);
        // Popular draws from the head where Common products concentrate:
        // some collisions are expected at paper scale but not guaranteed in
        // tiny worlds; just check bounds.
        assert!(rep.common_popular.0 <= w.config.common_size);
    }

    #[test]
    fn popular_apps_are_top_ranked() {
        let w = world();
        let ds = build_datasets(&w);
        let pop = ds
            .iter()
            .find(|d| d.kind == DatasetKind::Popular && d.platform == Platform::Android)
            .unwrap();
        let cutoff = (w.config.store_size * 3 / 10).max(w.config.popular_size) as u32 + 1;
        for &i in &pop.app_indices {
            assert!(w.apps[i].popularity_rank <= cutoff);
        }
    }
}
