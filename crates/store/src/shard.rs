//! Chunked world generation: seeded, independently-generatable app shards.
//!
//! [`crate::world::World::generate`] materializes every app before the
//! study touches one, which caps runs at what fits in memory. The
//! streaming engine instead builds a [`StreamWorld`] — the shared,
//! order-independent substrate (PKI universe, RNG roots, clock) — and
//! asks it for one [`AppShard`] at a time. Each shard carries its own
//! slice of products, their apps, and a shard-local [`Network`] holding
//! exactly the servers those apps can reach, so a shard can be generated,
//! measured, folded into an accumulator, and dropped.
//!
//! ## The shard determinism contract
//!
//! Every value an app or server embeds is derived from an RNG stream
//! keyed by a *stable name* (`"product/{i}"`, `"srv/{host}"`, …), never
//! from how much work preceded it. Two deliberate deviations from the
//! monolithic generator make this hold shard-by-shard:
//!
//! 1. **Seeded serials** (`Generator::seeded_serials`): leaf serials
//!    come from the hostname's own stream instead of the intermediate's
//!    issuance counter, so a chain's bytes do not depend on how many
//!    chains other shards issued first.
//! 2. **Bernoulli dataset membership**: the monolithic dataset builder
//!    sorts global listings and shuffles them; a streamed world draws
//!    each product's Common/Popular/Random membership from
//!    `"stream-datasets/{i}"` with probabilities chosen to match the
//!    configured expected sizes. The streamed report is therefore its own
//!    report family — self-consistent across any shard size and thread
//!    count, not byte-equal to the monolithic report.
//!
//! Consequently `generate_shard(k)` is a pure function of
//! `(config, shard_size, k)`: any partition of the product space into
//! shards yields the same apps byte for byte.

use crate::config::WorldConfig;
use crate::datasets::DatasetKind;
use crate::intern::CertInterner;
use crate::whois::WhoisRegistry;
use crate::world::appgen::{build_app, make_product, Product};
use crate::world::Generator;
use pinning_app::app::MobileApp;
use pinning_app::platform::Platform;
use pinning_crypto::SplitMix64;
use pinning_ctlog::LogSet;
use pinning_netsim::network::Network;
use pinning_pki::time::SimTime;
use pinning_pki::universe::{PkiUniverse, UniverseConfig};
use std::ops::Range;

/// The shared substrate of a streamed world plus the recipe for
/// generating any product shard on demand.
#[derive(Debug, Clone)]
pub struct StreamWorld {
    /// World-generation knobs (store size, rates, dataset sizes).
    pub config: WorldConfig,
    universe: PkiUniverse,
    root_rng: SplitMix64,
    now: SimTime,
    shard_size: usize,
}

/// One generated app plus its streamed-dataset memberships.
#[derive(Debug, Clone)]
pub struct StreamApp {
    /// The app itself.
    pub app: MobileApp,
    /// Index of the product this app belongs to (global, shard-invariant).
    pub product_index: usize,
    /// Which datasets this app was drawn into (possibly none: every app
    /// is still measured and counted in the per-platform totals).
    pub datasets: Vec<DatasetKind>,
}

/// One independently-generated chunk of the world: a contiguous product
/// range, its apps, and a network holding every server those apps reach.
#[derive(Debug)]
pub struct AppShard {
    /// Shard number (0-based).
    pub index: usize,
    /// The global product indices this shard covers.
    pub products: Range<usize>,
    /// Apps generated from those products, in product order
    /// (Android before iOS within a product, like the monolithic world).
    pub apps: Vec<StreamApp>,
    /// Shard-local network: infrastructure plus this shard's servers.
    pub network: Network,
    /// Simulation clock (same instant for every shard).
    pub now: SimTime,
}

impl StreamWorld {
    /// Builds the shared substrate once: the PKI universe from the
    /// `"pki"` stream and the clock. No apps or servers are materialized.
    pub fn new(config: WorldConfig, shard_size: usize) -> StreamWorld {
        let root_rng = SplitMix64::new(config.seed);
        let mut pki_rng = root_rng.derive("pki");
        let universe = PkiUniverse::generate(&UniverseConfig::default(), &mut pki_rng);
        let now = universe.now();
        StreamWorld {
            config,
            universe,
            root_rng,
            now,
            shard_size: shard_size.max(1),
        }
    }

    /// The PKI universe (platform root stores for the measurement env).
    pub fn universe(&self) -> &PkiUniverse {
        &self.universe
    }

    /// Simulation "now".
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Products per shard.
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Total number of products (each yields one or two apps).
    pub fn n_products(&self) -> usize {
        2 * self.config.store_size - self.config.n_cross_products
    }

    /// Total number of shards.
    pub fn n_shards(&self) -> usize {
        self.n_products().div_ceil(self.shard_size)
    }

    /// Generates shard `k`: a pure function of `(config, shard_size, k)`.
    ///
    /// Panics if `k >= n_shards()`.
    pub fn generate_shard(&self, k: usize) -> AppShard {
        let n_products = self.n_products();
        assert!(k < self.n_shards(), "shard {k} out of range");
        let start = k * self.shard_size;
        let end = (start + self.shard_size).min(n_products);

        let mut gen = Generator {
            config: &self.config,
            universe: self.universe.clone(),
            network: Network::new(),
            // CT submissions are a render-time concern of the monolithic
            // report; the streamed tables never consult the log, so each
            // shard gets an empty log set instead of rebuilding one.
            ctlog: LogSet::default(),
            whois: WhoisRegistry::default(),
            rng: self.root_rng,
            now: self.now,
            seeded_serials: true,
        };
        // Infrastructure is order-independent per hostname, so every
        // shard re-derives the identical Apple/SDK/CDN servers locally.
        gen.register_infrastructure();

        // 1. Products (each from its own "product/{i}" stream).
        let store_size = self.config.store_size;
        let n_cross = self.config.n_cross_products;
        let mut products = Vec::with_capacity(end - start);
        for i in start..end {
            products.push(make_product(&mut gen, i, n_cross, store_size));
        }

        // 2. First-party servers. The §5.3.1 self-signed oddballs are a
        //    global first-pinner scan in the monolithic generator and are
        //    deliberately absent from streamed worlds.
        for p in &products {
            for d in &p.fp_domains {
                gen.register_public_server(vec![d.clone()], &p.org);
            }
            for plan in [&p.android, &p.ios].into_iter().flatten() {
                if let Some(d) = &plan.custom_pki_domain {
                    gen.register_custom_server(vec![d.clone()], &p.org);
                }
                if let Some(d) = &plan.self_signed_domain {
                    let years = if plan.custom_pki_domain.is_some() {
                        10
                    } else {
                        27
                    };
                    gen.register_self_signed_server(vec![d.clone()], &p.org, years);
                }
            }
        }

        // 3. Apps + dataset membership draws.
        let mut apps = Vec::new();
        for (off, p) in products.iter().enumerate() {
            let pi = start + off;
            let draws = MembershipDraws::for_product(&self.root_rng, &self.config, p, pi);
            if p.android.is_some() {
                let mut app = build_app(&mut gen, p, pi, Platform::Android);
                app.popularity_rank = synth_rank(p.rank_score_android, store_size);
                apps.push(StreamApp {
                    app,
                    product_index: pi,
                    datasets: draws.on(Platform::Android),
                });
            }
            if p.ios.is_some() {
                let mut app = build_app(&mut gen, p, pi, Platform::Ios);
                app.popularity_rank = synth_rank(p.rank_score_ios, store_size);
                apps.push(StreamApp {
                    app,
                    product_index: pi,
                    datasets: draws.on(Platform::Ios),
                });
            }
        }

        let Generator {
            mut network,
            universe: _,
            ..
        } = gen;

        // Intern CA material shard-locally, exactly like the monolithic
        // world: served chains share canonical intermediates/roots, and
        // derived values (DER, fingerprints, SPKI digests) are computed
        // once per certificate instead of once per server.
        let mut interner = CertInterner::new();
        for server in network.servers_mut() {
            interner.intern_chain_cas(&mut server.chain);
        }
        interner.warm();

        AppShard {
            index: k,
            products: start..end,
            apps,
            network,
            now: self.now,
        }
    }
}

/// The monolithic listing sort assigns 1-based popularity ranks; streamed
/// worlds synthesize the rank a score would land at in expectation.
fn synth_rank(rank_score: f64, store_size: usize) -> u32 {
    ((rank_score * store_size as f64) as u32).saturating_add(1)
}

/// The five Bernoulli membership draws for one product, in a fixed order
/// so the stream never depends on which platforms exist.
struct MembershipDraws {
    common: bool,
    popular_android: bool,
    popular_ios: bool,
    random_android: bool,
    random_ios: bool,
    cross: bool,
    android: bool,
    ios: bool,
    pool: f64,
    score_android: f64,
    score_ios: f64,
}

impl MembershipDraws {
    fn for_product(
        root_rng: &SplitMix64,
        cfg: &WorldConfig,
        p: &Product,
        pi: usize,
    ) -> MembershipDraws {
        let mut r = root_rng.derive(&format!("stream-datasets/{pi}"));
        let p_common = prob(cfg.common_size, cfg.n_cross_products);
        // The Popular dataset samples from the head of the listing: the
        // pool is the top `popular_pool_fraction` of the store, which for
        // uniform rank scores is `score < pool`.
        let pool = cfg.popular_pool_fraction.clamp(f64::MIN_POSITIVE, 1.0);
        let p_popular =
            (cfg.popular_size as f64 / (cfg.store_size as f64 * pool).max(1.0)).min(1.0);
        let p_random = prob(cfg.random_size, cfg.store_size);
        MembershipDraws {
            common: r.chance(p_common),
            popular_android: r.chance(p_popular),
            popular_ios: r.chance(p_popular),
            random_android: r.chance(p_random),
            random_ios: r.chance(p_random),
            cross: p.cross,
            android: p.android.is_some(),
            ios: p.ios.is_some(),
            pool,
            score_android: p.rank_score_android,
            score_ios: p.rank_score_ios,
        }
    }

    fn on(&self, platform: Platform) -> Vec<DatasetKind> {
        let (present, popular_draw, random_draw, score) = match platform {
            Platform::Android => (
                self.android,
                self.popular_android,
                self.random_android,
                self.score_android,
            ),
            Platform::Ios => (self.ios, self.popular_ios, self.random_ios, self.score_ios),
        };
        let mut out = Vec::new();
        if !present {
            return out;
        }
        if self.cross && self.common {
            out.push(DatasetKind::Common);
        }
        if score < self.pool && popular_draw {
            out.push(DatasetKind::Popular);
        }
        if random_draw {
            out.push(DatasetKind::Random);
        }
        out
    }
}

fn prob(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        (num as f64 / den as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_crypto::sha256;

    fn tiny_stream(shard_size: usize) -> StreamWorld {
        StreamWorld::new(WorldConfig::tiny(0x5EED), shard_size)
    }

    /// A stable digest of everything observable about a shard's apps and
    /// the servers they resolve to.
    fn digest_apps(world: &StreamWorld, shard_sizes: usize) -> Vec<(String, [u8; 32])> {
        let sw = tiny_stream(shard_sizes);
        let _ = world;
        let mut out = Vec::new();
        for k in 0..sw.n_shards() {
            let shard = sw.generate_shard(k);
            for sa in &shard.apps {
                let mut repr = format!("{:?}|{:?}|{:?}", sa.app.id, sa.datasets, sa.product_index);
                for conn in &sa.app.behavior.connections {
                    repr.push_str(&format!("|{:?}", conn.domain));
                    if let Some(server) = shard.network.resolve(&conn.domain) {
                        for cert in server.chain.certs() {
                            repr.push_str(&format!("{:02x?}", cert.fingerprint_sha256()));
                        }
                    }
                }
                out.push((sa.app.id.to_string(), sha256(repr.as_bytes())));
            }
        }
        out
    }

    #[test]
    fn shard_size_does_not_change_content() {
        let w = tiny_stream(7);
        let a = digest_apps(&w, 7);
        let b = digest_apps(&w, 13);
        let c = digest_apps(&w, 1000);
        assert_eq!(a, b, "shard size 7 vs 13 changed app content");
        assert_eq!(a, c, "shard size 1000 changed app content");
    }

    #[test]
    fn covers_every_product_exactly_once() {
        let sw = tiny_stream(11);
        let mut seen = Vec::new();
        for k in 0..sw.n_shards() {
            let shard = sw.generate_shard(k);
            seen.extend(shard.products.clone());
        }
        let expect: Vec<usize> = (0..sw.n_products()).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn membership_sizes_are_plausible() {
        let sw = tiny_stream(16);
        let mut per_kind = [0usize; 3];
        let mut total = 0usize;
        for k in 0..sw.n_shards() {
            for sa in sw.generate_shard(k).apps {
                total += 1;
                for d in sa.datasets {
                    let slot = DatasetKind::ALL
                        .iter()
                        .position(|x| *x == d)
                        .expect("known kind");
                    per_kind[slot] += 1;
                }
            }
        }
        assert!(total > 0);
        // Expected sizes are small in the tiny config; just require that
        // at least one dataset drew members and none swallowed the world.
        assert!(per_kind.iter().sum::<usize>() > 0, "no dataset members");
        assert!(per_kind.iter().all(|&n| n < total), "{per_kind:?}");
    }

    #[test]
    fn shard_generation_is_idempotent() {
        let sw = tiny_stream(9);
        let a = sw.generate_shard(0);
        let b = sw.generate_shard(0);
        assert_eq!(a.apps.len(), b.apps.len());
        for (x, y) in a.apps.iter().zip(&b.apps) {
            assert_eq!(x.app.id, y.app.id);
            assert_eq!(x.datasets, y.datasets);
            assert_eq!(x.app.package.content_hash(), y.app.package.content_hash());
        }
    }
}
