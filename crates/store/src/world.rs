//! World generation: the simulated mobile ecosystem with planted ground
//! truth.
//!
//! Generation order matters:
//!
//! 1. the PKI universe (roots, intermediates, platform stores);
//! 2. infrastructure servers (Apple background domains, SDK backends,
//!    shared CDN noise);
//! 3. products and their first-party domains/servers — *pinning decisions
//!    are made first*, because custom-PKI products need their servers
//!    registered with private chains;
//! 4. per-platform apps (the `appgen` submodule), with coordinated
//!    cross-platform consistency profiles for Common-dataset products;
//! 5. CT-log submission of the publicly-issued certificates.

use crate::config::WorldConfig;
use crate::intern::CertInterner;
use crate::whois::WhoisRegistry;
use pinning_app::app::MobileApp;
use pinning_app::platform::Platform;
use pinning_app::sdk;
use pinning_crypto::sig::KeyPair;
use pinning_crypto::SplitMix64;
use pinning_ctlog::LogSet;
use pinning_netsim::network::Network;
use pinning_netsim::server::OriginServer;
use pinning_pki::time::SimTime;
use pinning_pki::universe::{PkiUniverse, UniverseConfig};
use std::collections::HashMap;

pub(crate) mod appgen;

pub use appgen::HostileKind;

/// The complete generated ecosystem.
#[derive(Debug)]
pub struct World {
    /// Generation configuration.
    pub config: WorldConfig,
    /// The PKI.
    pub universe: PkiUniverse,
    /// Every reachable server.
    pub network: Network,
    /// The CT ecosystem: operator/temporally sharded logs whose union is
    /// the crt.sh substitute.
    pub ctlog: LogSet,
    /// Domain-ownership registry.
    pub whois: WhoisRegistry,
    /// Every app on both stores.
    pub apps: Vec<MobileApp>,
    /// Android store listing: app indices in rank order (rank 1 first).
    pub android_listing: Vec<usize>,
    /// iOS store listing: app indices in rank order.
    pub ios_listing: Vec<usize>,
    /// AlternativeTo-style cross-platform product keys, popularity order.
    pub alternativeto: Vec<String>,
    /// Product key → (android app idx, ios app idx).
    pub products: HashMap<String, (Option<usize>, Option<usize>)>,
    /// Indices (into [`World::apps`]) of the adversarial cohort: hostile
    /// apps planted outside the store listings (see
    /// [`crate::config::WorldConfig::adversarial_apps`]). Empty by default.
    pub hostile_apps: Vec<usize>,
    /// Canonical copies of every CA certificate served anywhere on the
    /// network, warmed so derived values are never recomputed.
    pub interner: CertInterner,
    /// Simulation "now".
    pub now: SimTime,
}

impl World {
    /// Generates the world from `config`.
    pub fn generate(config: WorldConfig) -> World {
        let root_rng = SplitMix64::new(config.seed);
        let mut pki_rng = root_rng.derive("pki");
        let universe = PkiUniverse::generate(&UniverseConfig::default(), &mut pki_rng);
        let now = universe.now();

        let mut ct_rng = root_rng.derive("ct");
        let mut gen = Generator {
            config: &config,
            universe,
            network: Network::new(),
            ctlog: LogSet::sim_ecosystem(
                now,
                config.ct_leaf_coverage,
                config.ct_ca_coverage,
                &mut ct_rng,
            ),
            whois: WhoisRegistry::new(),
            rng: root_rng,
            now,
            seeded_serials: false,
        };
        gen.register_infrastructure();

        let (apps, android_listing, ios_listing, alternativeto, products, hostile_apps) =
            appgen::generate_apps(&mut gen);

        let Generator {
            universe,
            mut network,
            ctlog,
            whois,
            ..
        } = gen;

        // Intern CA material: thousands of served chains embed the same few
        // dozen intermediates/roots, so point them all at one canonical
        // copy per fingerprint and pay each derived value (DER,
        // fingerprint, SPKI digests, pin string) exactly once.
        let mut interner = CertInterner::new();
        for server in network.servers_mut() {
            interner.intern_chain_cas(&mut server.chain);
        }
        interner.warm();

        World {
            config,
            universe,
            network,
            ctlog,
            whois,
            apps,
            android_listing,
            ios_listing,
            alternativeto,
            products,
            hostile_apps,
            interner,
            now,
        }
    }

    /// The app at a listing rank (1-based) on `platform`.
    pub fn app_at_rank(&self, platform: Platform, rank: usize) -> Option<&MobileApp> {
        let listing = match platform {
            Platform::Android => &self.android_listing,
            Platform::Ios => &self.ios_listing,
        };
        listing.get(rank.checked_sub(1)?).map(|&i| &self.apps[i])
    }

    /// The listing for `platform`.
    pub fn listing(&self, platform: Platform) -> &[usize] {
        match platform {
            Platform::Android => &self.android_listing,
            Platform::Ios => &self.ios_listing,
        }
    }

    /// Ground truth: indices of apps that pin at run time on `platform`.
    pub fn truth_runtime_pinners(&self, platform: Platform) -> Vec<usize> {
        self.listing(platform)
            .iter()
            .copied()
            .filter(|&i| self.apps[i].pins_at_runtime())
            .collect()
    }
}

/// Shared generation state passed through the sub-generators.
pub(crate) struct Generator<'a> {
    pub config: &'a WorldConfig,
    pub universe: PkiUniverse,
    pub network: Network,
    pub ctlog: LogSet,
    pub whois: WhoisRegistry,
    pub rng: SplitMix64,
    /// Simulation "now" (kept for sub-generators that need wall-clock
    /// anchoring, e.g. future certificate-rotation extensions).
    #[allow(dead_code)]
    pub now: SimTime,
    /// When set, public-server leaf serials come from the hostname's own
    /// RNG stream instead of the intermediate's issuance counter. The
    /// legacy (monolithic) generator leaves this off, keeping its worlds
    /// byte-identical; the streaming shard generator turns it on so a
    /// host's chain never depends on how many hosts other shards issued
    /// first.
    pub seeded_serials: bool,
}

impl<'a> Generator<'a> {
    /// Registers a default-PKI server for `hostnames` under a chain issued
    /// by a deterministic intermediate, records whois, and submits the
    /// chain to the CT log (leaf coverage is probabilistic).
    pub fn register_public_server(&mut self, hostnames: Vec<String>, organization: &str) -> usize {
        let mut domain_rng = self.rng.derive(&format!("srv/{}", hostnames[0]));
        let key = KeyPair::generate(&mut domain_rng);
        let inter_idx = (domain_rng.next_below(self.universe.n_intermediates() as u64)) as usize;
        let lifetime = 90 + domain_rng.next_below(300);
        let chain = if self.seeded_serials {
            let serial = domain_rng.next_u64();
            self.universe.issue_server_chain_via_seeded(
                inter_idx,
                &hostnames,
                organization,
                &key,
                lifetime,
                serial,
            )
        } else {
            self.universe.issue_server_chain_via(
                inter_idx,
                &hostnames,
                organization,
                &key,
                lifetime,
            )
        };
        // CT submission: offer the whole chain to every shard; each shard's
        // policy (validity epoch + per-certificate acceptance draw) decides
        // what it stores. The union coverage is incomplete for both CA and
        // leaf material (§4.1.3 resolved only ~50% of pins), and because
        // acceptance is deterministic per (shard, fingerprint), every chain
        // sharing a CA agrees on that CA's fate.
        for cert in chain.certs() {
            self.ctlog.submit(cert);
        }
        for h in &hostnames {
            self.whois.record(h, organization);
        }
        let mut server = OriginServer::modern(hostnames, organization.to_string(), chain)
            .flaky(1.0 - self.config.server_flakiness);
        if domain_rng.chance(self.config.tls12_server_share) {
            server = server.tls12_only();
        }
        self.network.register(server)
    }

    /// Registers a custom-PKI server (private root, never CT-logged).
    pub fn register_custom_server(&mut self, hostnames: Vec<String>, organization: &str) -> usize {
        let mut domain_rng = self.rng.derive(&format!("srv-custom/{}", hostnames[0]));
        let key = KeyPair::generate(&mut domain_rng);
        let (_ca, chain) =
            self.universe
                .issue_custom_chain(organization, &hostnames, &key, 398, &mut domain_rng);
        for h in &hostnames {
            self.whois.record(h, organization);
        }
        self.network.register(OriginServer::modern(
            hostnames,
            organization.to_string(),
            chain,
        ))
    }

    /// Registers a self-signed server (§5.3.1's oddballs).
    pub fn register_self_signed_server(
        &mut self,
        hostnames: Vec<String>,
        organization: &str,
        lifetime_years: u64,
    ) -> usize {
        let mut domain_rng = self.rng.derive(&format!("srv-ss/{}", hostnames[0]));
        let chain = self.universe.issue_self_signed(
            organization,
            &hostnames,
            lifetime_years,
            &mut domain_rng,
        );
        for h in &hostnames {
            self.whois.record(h, organization);
        }
        self.network.register(OriginServer::modern(
            hostnames,
            organization.to_string(),
            chain,
        ))
    }

    pub(crate) fn register_infrastructure(&mut self) {
        // Apple's always-on background services (§4.5).
        for d in pinning_netsim::APPLE_BACKGROUND_DOMAINS {
            self.register_public_server(vec![d.to_string()], "Apple Inc");
        }
        // SDK backends.
        for spec in sdk::registry() {
            for d in spec.domains {
                if !self.network.has_host(d) {
                    self.register_public_server(vec![d.to_string()], spec.name);
                }
            }
        }
        // Shared CDN / noise destinations contacted by many apps.
        for (d, org) in [
            ("fonts.gstatic.com", "Google LLC"),
            ("cdn.jsdelivr.net", "jsDelivr"),
            ("api.segment.io", "Segment"),
            ("sdk.split.io", "Split Software"),
            ("cdn.branch.io", "Branch Metrics"),
            ("logs.datadoghq.com", "Datadog"),
        ] {
            self.register_public_server(vec![d.to_string()], org);
        }
    }
}

/// The shared noise domains apps sprinkle into their traffic.
pub(crate) const NOISE_DOMAINS: [&str; 6] = [
    "fonts.gstatic.com",
    "cdn.jsdelivr.net",
    "api.segment.io",
    "sdk.split.io",
    "cdn.branch.io",
    "logs.datadoghq.com",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_world() -> World {
        World::generate(WorldConfig::tiny(0x77))
    }

    #[test]
    fn world_has_expected_shape() {
        let w = tiny_world();
        assert_eq!(w.android_listing.len(), w.config.store_size);
        assert_eq!(w.ios_listing.len(), w.config.store_size);
        assert!(w.alternativeto.len() >= w.config.common_size);
        assert!(w.network.n_hostnames() > w.config.store_size); // ≥1 domain/app + infra
        assert!(!w.ctlog.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny_world();
        let b = tiny_world();
        assert_eq!(a.apps.len(), b.apps.len());
        for (x, y) in a.apps.iter().zip(&b.apps) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.pin_rules.len(), y.pin_rules.len());
            assert_eq!(x.behavior.connections.len(), y.behavior.connections.len());
        }
        assert_eq!(a.alternativeto, b.alternativeto);
    }

    #[test]
    fn different_seeds_differ() {
        let a = tiny_world();
        let b = World::generate(WorldConfig::tiny(0x78));
        let pins_a: usize = a.apps.iter().map(|x| x.pin_rules.len()).sum();
        let pins_b: usize = b.apps.iter().map(|x| x.pin_rules.len()).sum();
        // Structure identical, contents differ (allow rare coincidence in counts
        // but identities must differ).
        assert!(pins_a != pins_b || a.apps[0].developer_org != b.apps[0].developer_org);
    }

    #[test]
    fn cross_products_exist_on_both_platforms() {
        let w = tiny_world();
        let mut both = 0;
        for key in &w.alternativeto {
            let (a, i) = w.products[key];
            if a.is_some() && i.is_some() {
                both += 1;
            }
        }
        assert!(both >= w.config.common_size);
    }

    #[test]
    fn planned_connections_resolve() {
        let w = tiny_world();
        for app in &w.apps {
            for conn in &app.behavior.connections {
                assert!(
                    w.network.has_host(&conn.domain),
                    "unresolvable domain {} planned by {}",
                    conn.domain,
                    app.id
                );
            }
        }
    }

    #[test]
    fn pin_rules_match_served_chains() {
        // Ground-truth sanity: every active pin rule must accept the real
        // chain served at its pattern's destination (otherwise the app
        // would break in production).
        let w = tiny_world();
        for app in &w.apps {
            for conn in &app.behavior.connections {
                let Some((_, rule)) = app.pin_rule_for(&conn.domain) else {
                    continue;
                };
                let server = w.network.resolve(&conn.domain).unwrap();
                assert!(
                    rule.pins.matches_chain(server.chain.certs()),
                    "rule for {} in {} does not match served chain",
                    conn.domain,
                    app.id
                );
            }
        }
    }

    #[test]
    fn interner_covers_all_served_cas() {
        let w = tiny_world();
        assert!(!w.interner.is_empty());
        for server in w.network.servers() {
            for cert in server.chain.certs().iter().skip(1) {
                assert!(
                    w.interner.canonical(&cert.fingerprint_sha256()).is_some(),
                    "CA of {:?} not interned",
                    server.hostnames
                );
            }
        }
        // CA reuse across chains is the whole point.
        assert!(w.interner.deduplicated() > w.interner.unique());
    }

    #[test]
    fn some_apps_pin_and_most_do_not() {
        let w = tiny_world();
        let pinners = w.apps.iter().filter(|a| a.pins_at_runtime()).count();
        assert!(pinners > 0, "a world with no pinning reproduces nothing");
        assert!(pinners < w.apps.len() / 2, "pinning must be the minority");
    }

    #[test]
    fn ios_apps_are_encrypted_android_not() {
        let w = tiny_world();
        for app in &w.apps {
            match app.id.platform {
                Platform::Android => assert!(!app.package.encrypted),
                Platform::Ios => assert!(app.package.encrypted),
            }
        }
    }

    #[test]
    fn apple_background_domains_registered() {
        let w = tiny_world();
        for d in pinning_netsim::APPLE_BACKGROUND_DOMAINS {
            assert!(w.network.has_host(d));
        }
    }

    #[test]
    fn listings_are_permutations() {
        let w = tiny_world();
        let mut a = w.android_listing.clone();
        a.sort_unstable();
        a.dedup();
        assert_eq!(a.len(), w.config.store_size);
        for &i in &w.android_listing {
            assert_eq!(w.apps[i].id.platform, Platform::Android);
        }
        for &i in &w.ios_listing {
            assert_eq!(w.apps[i].id.platform, Platform::Ios);
        }
    }
}
