//! Per-endpoint circuit breakers.
//!
//! A circuit breaker remembers that an endpoint has been failing and
//! short-circuits further attempts until a cooldown has passed, then lets
//! a single probe through (half-open) before either closing again or
//! re-opening. Two layers share this implementation: the netsim test bed
//! (where breakers stop dead hosts from burning the retry ladder, PR 3)
//! and the `pinning-serve` admission path (where an open breaker rejects
//! requests at the front door instead of queueing work that will fail).
//!
//! The state machine is the classic three-state breaker:
//!
//! ```text
//!            ≥ threshold consecutive faults
//!   Closed ────────────────────────────────▶ Open
//!     ▲                                       │ cooldown attempts skipped
//!     │ probe succeeds                        ▼
//!     └───────────────────────────────── HalfOpen
//!                                             │ probe faults
//!                                             └──────▶ Open (re-trip)
//! ```
//!
//! The breaker is generic over the fault payload `F` (the netsim layer
//! uses its injected `FaultKind`; the serving layer uses a backend fault
//! enum), and [`Admission::Skip`] carries the fault that tripped the
//! breaker so short-circuited attempts can be journaled faithfully.
//!
//! Determinism: breaker decisions are a pure function of the observed
//! fault sequence, and every owner holds its own [`BreakerSet`], so
//! results are independent of worker count and scheduling order.

use std::cell::RefCell;
use std::collections::BTreeMap;

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive faults on one endpoint that trip the breaker.
    pub failure_threshold: u32,
    /// Attempts short-circuited while open before a half-open probe.
    pub cooldown_attempts: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        // Trip on the third consecutive fault, skip two attempts, probe.
        BreakerConfig {
            failure_threshold: 3,
            cooldown_attempts: 2,
        }
    }
}

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Traffic flows normally.
    #[default]
    Closed,
    /// The endpoint is quarantined; attempts are short-circuited.
    Open,
    /// One probe attempt is allowed through.
    HalfOpen,
}

/// Verdict for one connection attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission<F> {
    /// Attempt the connection.
    Proceed,
    /// Short-circuit: record the given fault and skip the attempt.
    Skip(F),
}

#[derive(Debug, Clone, Copy)]
struct Endpoint<F> {
    state: BreakerState,
    consecutive_faults: u32,
    skipped_while_open: u32,
    last_fault: Option<F>,
    trips: u32,
}

impl<F> Default for Endpoint<F> {
    fn default() -> Self {
        Endpoint {
            state: BreakerState::default(),
            consecutive_faults: 0,
            skipped_while_open: 0,
            last_fault: None,
            trips: 0,
        }
    }
}

/// One breaker per endpoint, scoped to a single owner (an app's
/// measurement in netsim, a service instance in `pinning-serve`).
///
/// Interior mutability keeps call sites that only hold `&self` simple; a
/// `BreakerSet` is thread-confined to its owner, never shared.
#[derive(Debug)]
pub struct BreakerSet<F> {
    config: BreakerConfig,
    endpoints: RefCell<BTreeMap<String, Endpoint<F>>>,
}

impl<F> Default for BreakerSet<F> {
    fn default() -> Self {
        BreakerSet {
            config: BreakerConfig::default(),
            endpoints: RefCell::new(BTreeMap::new()),
        }
    }
}

impl<F: Copy> BreakerSet<F> {
    /// A breaker set with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        BreakerSet {
            config,
            endpoints: RefCell::new(BTreeMap::new()),
        }
    }

    /// Decides whether a connection attempt to `domain` may proceed.
    ///
    /// Open breakers consume one cooldown slot per call; once the cooldown
    /// is exhausted the breaker moves to half-open and admits a probe.
    pub fn admit(&self, domain: &str) -> Admission<F> {
        let mut map = self.endpoints.borrow_mut();
        let Some(ep) = map.get_mut(domain) else {
            return Admission::Proceed;
        };
        match ep.state {
            BreakerState::Closed | BreakerState::HalfOpen => Admission::Proceed,
            BreakerState::Open => {
                if ep.skipped_while_open < self.config.cooldown_attempts {
                    ep.skipped_while_open += 1;
                    Admission::Skip(ep.last_fault.expect("open breaker saw a fault"))
                } else {
                    ep.state = BreakerState::HalfOpen;
                    Admission::Proceed
                }
            }
        }
    }

    /// Records a fault on `domain`; may trip the breaker.
    pub fn record_fault(&self, domain: &str, kind: F) {
        let mut map = self.endpoints.borrow_mut();
        let ep = map.entry(domain.to_string()).or_default();
        ep.last_fault = Some(kind);
        match ep.state {
            BreakerState::Closed => {
                ep.consecutive_faults += 1;
                if ep.consecutive_faults >= self.config.failure_threshold {
                    ep.state = BreakerState::Open;
                    ep.skipped_while_open = 0;
                    ep.trips += 1;
                }
            }
            BreakerState::HalfOpen => {
                // The probe faulted: straight back to open.
                ep.state = BreakerState::Open;
                ep.skipped_while_open = 0;
                ep.trips += 1;
            }
            BreakerState::Open => {}
        }
    }

    /// Records a clean attempt on `domain`; closes the breaker.
    pub fn record_success(&self, domain: &str) {
        let mut map = self.endpoints.borrow_mut();
        if let Some(ep) = map.get_mut(domain) {
            ep.state = BreakerState::Closed;
            ep.consecutive_faults = 0;
            ep.skipped_while_open = 0;
        }
    }

    /// The current state of `domain`'s breaker.
    pub fn state(&self, domain: &str) -> BreakerState {
        self.endpoints
            .borrow()
            .get(domain)
            .map(|e| e.state)
            .unwrap_or_default()
    }

    /// Total closed→open transitions across all endpoints.
    pub fn trips(&self) -> u32 {
        self.endpoints.borrow().values().map(|e| e.trips).sum()
    }

    /// Endpoints that tripped at least once, with their trip counts.
    pub fn tripped_endpoints(&self) -> Vec<(String, u32)> {
        self.endpoints
            .borrow()
            .iter()
            .filter(|(_, e)| e.trips > 0)
            .map(|(d, e)| (d.clone(), e.trips))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Stand-in fault payload (the netsim layer plugs in `FaultKind`, the
    /// serving layer its backend fault enum).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Fault {
        Dns,
        TcpReset,
        HandshakeTimeout,
        Truncation,
    }

    fn set() -> BreakerSet<Fault> {
        BreakerSet::new(BreakerConfig {
            failure_threshold: 3,
            cooldown_attempts: 2,
        })
    }

    #[test]
    fn trips_after_threshold_consecutive_faults() {
        let b = set();
        for _ in 0..2 {
            b.record_fault("api.example", Fault::Dns);
            assert_eq!(b.state("api.example"), BreakerState::Closed);
        }
        b.record_fault("api.example", Fault::Dns);
        assert_eq!(b.state("api.example"), BreakerState::Open);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let b = set();
        b.record_fault("api.example", Fault::TcpReset);
        b.record_fault("api.example", Fault::TcpReset);
        b.record_success("api.example");
        b.record_fault("api.example", Fault::TcpReset);
        b.record_fault("api.example", Fault::TcpReset);
        assert_eq!(b.state("api.example"), BreakerState::Closed);
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn open_breaker_skips_cooldown_then_probes() {
        let b = set();
        for _ in 0..3 {
            b.record_fault("api.example", Fault::HandshakeTimeout);
        }
        // Two cooldown skips, carrying the tripping fault kind.
        for _ in 0..2 {
            assert_eq!(
                b.admit("api.example"),
                Admission::Skip(Fault::HandshakeTimeout)
            );
        }
        // Third attempt is the half-open probe.
        assert_eq!(b.admit("api.example"), Admission::Proceed);
        assert_eq!(b.state("api.example"), BreakerState::HalfOpen);
    }

    #[test]
    fn probe_success_closes_probe_fault_reopens() {
        let b = set();
        for _ in 0..3 {
            b.record_fault("cdn.example", Fault::Truncation);
        }
        for _ in 0..2 {
            let _ = b.admit("cdn.example");
        }
        assert_eq!(b.admit("cdn.example"), Admission::Proceed);
        b.record_success("cdn.example");
        assert_eq!(b.state("cdn.example"), BreakerState::Closed);

        // Re-trip, probe again, fault the probe: re-opens and re-counts.
        for _ in 0..3 {
            b.record_fault("cdn.example", Fault::Truncation);
        }
        for _ in 0..2 {
            let _ = b.admit("cdn.example");
        }
        let _ = b.admit("cdn.example"); // half-open
        b.record_fault("cdn.example", Fault::Truncation);
        assert_eq!(b.state("cdn.example"), BreakerState::Open);
        assert_eq!(b.trips(), 3);
        assert_eq!(b.tripped_endpoints(), vec![("cdn.example".to_string(), 3)]);
    }

    #[test]
    fn endpoints_are_independent() {
        let b = set();
        for _ in 0..3 {
            b.record_fault("down.example", Fault::Dns);
        }
        assert_eq!(b.state("down.example"), BreakerState::Open);
        assert_eq!(b.admit("up.example"), Admission::Proceed);
        assert_eq!(b.state("up.example"), BreakerState::Closed);
    }

    #[test]
    fn default_set_uses_default_config() {
        let b: BreakerSet<Fault> = BreakerSet::default();
        for _ in 0..3 {
            b.record_fault("d.example", Fault::Dns);
        }
        assert_eq!(b.state("d.example"), BreakerState::Open);
    }
}
