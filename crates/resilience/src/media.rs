//! Durable-media abstraction and seeded storage-fault injection.
//!
//! Every journal in this workspace (the PINJRNL1 result journal, the
//! STRMJRN1 shard journal, the epoch checkpoint) is crash-safe against
//! one failure: the process dying over a perfect byte buffer. Real
//! durable media fail differently — an unflushed tail vanishes, a write
//! lands only partially, a lying disk acknowledges an fsync it never
//! performed, read-back flips bits, the volume fills up, a retried write
//! lands twice. [`Media`] models the storage contract those journals
//! actually depend on, with two implementations:
//!
//! * [`VecMedia`] — the perfect in-memory medium, byte-exact with the
//!   `Vec<u8>` buffers the journals used before this layer existed.
//!   Every byte appended is instantly durable; `crash` loses nothing.
//! * [`FaultMedia`] — a seeded hostile medium driven by a
//!   [`MediaFaultPlan`]. Same API, worst-case physics: data is durable
//!   only once a *successful* flush has covered it, crashes tear the
//!   unflushed tail, reads may rot, and appends may duplicate or hit
//!   `ENOSPC`.
//!
//! Everything is deterministic: all fault draws come from a
//! [`SplitMix64`] stream seeded by the plan, so a chaos-matrix cell can
//! be replayed bit-for-bit from `(seed, plan, kill point)`.

use pinning_crypto::SplitMix64;

/// A write the medium refused.
///
/// The only *refusal* a durable medium issues synchronously is running
/// out of space; every other storage fault (torn writes, lost flushes,
/// bit rot) is silent and surfaces at recovery time instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MediaError {
    /// The medium is full: accepting the write would exceed capacity.
    NoSpace,
}

impl std::fmt::Display for MediaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MediaError::NoSpace => write!(f, "medium out of space (ENOSPC)"),
        }
    }
}

impl std::error::Error for MediaError {}

/// The storage contract the journals write against.
///
/// The model is an append-only file plus an explicit durability barrier:
///
/// * [`append`](Media::append) buffers bytes at the end of the medium;
/// * [`flush`](Media::flush) is the barrier — data covered by a
///   successful flush must survive a [`crash`](Media::crash);
/// * [`crash`](Media::crash) simulates the process (and page cache)
///   dying: what happens to unflushed bytes is the medium's business;
/// * [`read_back`](Media::read_back) is what a fresh process would read
///   from the medium (takes `&mut self` because a faulty medium may rot
///   bits on the read path, consuming RNG state);
/// * [`reset`](Media::reset) truncates to empty (checkpoint slots are
///   rewritten in place by truncate-then-write).
pub trait Media {
    /// Appends bytes at the end of the medium.
    fn append(&mut self, bytes: &[u8]) -> Result<(), MediaError>;
    /// Durability barrier: on success, everything appended so far must
    /// survive a crash. A faulty medium may *lie* — report success while
    /// leaving the data volatile.
    fn flush(&mut self) -> Result<(), MediaError>;
    /// The process and its page cache die. Unflushed bytes are torn or
    /// lost according to the medium's physics.
    fn crash(&mut self);
    /// The bytes a fresh process reads from the medium.
    fn read_back(&mut self) -> Vec<u8>;
    /// Truncates the medium to empty.
    fn reset(&mut self);
}

impl<M: Media + ?Sized> Media for &mut M {
    fn append(&mut self, bytes: &[u8]) -> Result<(), MediaError> {
        (**self).append(bytes)
    }

    fn flush(&mut self) -> Result<(), MediaError> {
        (**self).flush()
    }

    fn crash(&mut self) {
        (**self).crash()
    }

    fn read_back(&mut self) -> Vec<u8> {
        (**self).read_back()
    }

    fn reset(&mut self) {
        (**self).reset()
    }
}

/// The perfect medium: an in-memory byte buffer where every append is
/// instantly durable. Byte-exact with the pre-media `Vec<u8>` journals —
/// a journal written through `VecMedia` is identical to one written
/// before this layer existed.
#[derive(Debug, Clone, Default)]
pub struct VecMedia {
    bytes: Vec<u8>,
}

impl VecMedia {
    /// An empty perfect medium.
    pub fn new() -> VecMedia {
        VecMedia::default()
    }

    /// A medium pre-loaded with an existing image.
    pub fn from_bytes(bytes: Vec<u8>) -> VecMedia {
        VecMedia { bytes }
    }

    /// Borrow of the current image (no copy — the perfect medium's
    /// read-back can never differ from its contents).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the medium into its image.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

impl Media for VecMedia {
    fn append(&mut self, bytes: &[u8]) -> Result<(), MediaError> {
        self.bytes.extend_from_slice(bytes);
        Ok(())
    }

    fn flush(&mut self) -> Result<(), MediaError> {
        Ok(())
    }

    fn crash(&mut self) {}

    fn read_back(&mut self) -> Vec<u8> {
        self.bytes.clone()
    }

    fn reset(&mut self) {
        self.bytes.clear();
    }
}

/// Seeded storage-fault schedule for a [`FaultMedia`].
///
/// Probabilities are per operation (per append, per flush, per read).
/// All draws derive from `seed`, so a plan replays identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MediaFaultPlan {
    /// Seed of the fault-draw stream.
    pub seed: u64,
    /// P(an unflushed tail is torn at crash): a random *prefix* of the
    /// bytes appended since the last effective flush survives, cutting
    /// mid-frame. With probability `1 - torn_write` the tail is lost
    /// whole — both are legal outcomes for unflushed data.
    pub torn_write: f64,
    /// P(a flush lies): it reports success but leaves the data volatile,
    /// so a later crash loses bytes the writer believed durable.
    pub lost_flush: f64,
    /// P(a read-back is rotted): up to [`rot_bits`](Self::rot_bits)
    /// seeded bit flips are applied to the returned copy.
    pub read_rot: f64,
    /// Maximum bits flipped per rotted read (at least 1 when it fires).
    pub rot_bits: u32,
    /// P(an append lands twice — a retried write duplicating a segment).
    pub duplicate_segment: f64,
    /// Capacity in bytes; appends that would exceed it fail with
    /// [`MediaError::NoSpace`]. `None` = unbounded.
    pub capacity: Option<u64>,
}

impl MediaFaultPlan {
    /// No faults at all: `FaultMedia` under this plan behaves exactly
    /// like [`VecMedia`] (the equivalence is tested).
    pub fn none(seed: u64) -> MediaFaultPlan {
        MediaFaultPlan {
            seed,
            torn_write: 0.0,
            lost_flush: 0.0,
            read_rot: 0.0,
            rot_bits: 0,
            duplicate_segment: 0.0,
            capacity: None,
        }
    }

    /// Every crash tears the unflushed tail at a random byte.
    pub fn torn(seed: u64) -> MediaFaultPlan {
        MediaFaultPlan {
            torn_write: 1.0,
            ..MediaFaultPlan::none(seed)
        }
    }

    /// Half of all flushes lie, so crashes lose "durable" tails.
    pub fn lossy_flush(seed: u64) -> MediaFaultPlan {
        MediaFaultPlan {
            lost_flush: 0.5,
            torn_write: 0.5,
            ..MediaFaultPlan::none(seed)
        }
    }

    /// Every read-back flips up to four bits somewhere in the image.
    pub fn bit_rot(seed: u64) -> MediaFaultPlan {
        MediaFaultPlan {
            read_rot: 1.0,
            rot_bits: 4,
            ..MediaFaultPlan::none(seed)
        }
    }

    /// A medium that fills up after `capacity` bytes.
    pub fn tight(seed: u64, capacity: u64) -> MediaFaultPlan {
        MediaFaultPlan {
            capacity: Some(capacity),
            ..MediaFaultPlan::none(seed)
        }
    }

    /// A third of all appends land twice (duplicated segments).
    pub fn duplicating(seed: u64) -> MediaFaultPlan {
        MediaFaultPlan {
            duplicate_segment: 0.34,
            ..MediaFaultPlan::none(seed)
        }
    }

    /// Everything at once, at moderate rates — the storage analogue of
    /// `FaultConfig::chaos()`.
    pub fn chaos(seed: u64) -> MediaFaultPlan {
        MediaFaultPlan {
            seed,
            torn_write: 0.5,
            lost_flush: 0.2,
            read_rot: 0.3,
            rot_bits: 2,
            duplicate_segment: 0.15,
            capacity: None,
        }
    }
}

/// Cumulative fault telemetry for one [`FaultMedia`] (what the medium
/// actually did, as opposed to what the plan allowed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MediaStats {
    /// Appends accepted.
    pub appends: u64,
    /// Flush barriers requested.
    pub flushes: u64,
    /// Crashes where a torn prefix of the unflushed tail survived.
    pub torn_writes: u32,
    /// Flushes that lied (reported success, stayed volatile).
    pub lost_flushes: u32,
    /// Read-backs that returned rotted bytes.
    pub rotted_reads: u32,
    /// Appends that landed twice.
    pub duplicated_segments: u32,
    /// Appends refused with [`MediaError::NoSpace`].
    pub nospace_rejections: u32,
    /// Crashes simulated.
    pub crashes: u32,
}

/// A seeded hostile medium: same [`Media`] contract as [`VecMedia`],
/// worst-case durable-storage physics underneath.
///
/// Internally the image is three segments: `durable` (covered by an
/// honest flush — survives anything), `limbo` (covered by a *lying*
/// flush — the writer believes it durable, a crash proves otherwise),
/// and `tail` (appended since the last flush — fair game at crash).
/// `read_back` before a crash sees all three, exactly like reading a
/// file through the page cache; after a crash only `durable` remains.
#[derive(Debug, Clone)]
pub struct FaultMedia {
    plan: MediaFaultPlan,
    rng: SplitMix64,
    durable: Vec<u8>,
    limbo: Vec<u8>,
    tail: Vec<u8>,
    stats: MediaStats,
}

impl FaultMedia {
    /// An empty hostile medium under `plan`.
    pub fn new(plan: MediaFaultPlan) -> FaultMedia {
        FaultMedia {
            rng: SplitMix64::new(plan.seed).derive("fault-media"),
            plan,
            durable: Vec::new(),
            limbo: Vec::new(),
            tail: Vec::new(),
            stats: MediaStats::default(),
        }
    }

    /// Fault telemetry so far.
    pub fn stats(&self) -> MediaStats {
        self.stats
    }

    /// The plan this medium runs under.
    pub fn plan(&self) -> &MediaFaultPlan {
        &self.plan
    }

    fn stored_len(&self) -> u64 {
        (self.durable.len() + self.limbo.len() + self.tail.len()) as u64
    }
}

impl Media for FaultMedia {
    fn append(&mut self, bytes: &[u8]) -> Result<(), MediaError> {
        if let Some(cap) = self.plan.capacity {
            if self.stored_len() + bytes.len() as u64 > cap {
                self.stats.nospace_rejections += 1;
                return Err(MediaError::NoSpace);
            }
        }
        self.stats.appends += 1;
        if self.rng.chance(self.plan.duplicate_segment) {
            self.stats.duplicated_segments += 1;
            self.tail.extend_from_slice(bytes);
        }
        self.tail.extend_from_slice(bytes);
        Ok(())
    }

    fn flush(&mut self) -> Result<(), MediaError> {
        self.stats.flushes += 1;
        if self.rng.chance(self.plan.lost_flush) {
            // The lie: the writer is told the barrier held, but the bytes
            // stay volatile until an honest flush (or a crash) settles it.
            self.stats.lost_flushes += 1;
            self.limbo.append(&mut self.tail);
        } else {
            self.durable.append(&mut self.limbo);
            self.durable.append(&mut self.tail);
        }
        Ok(())
    }

    fn crash(&mut self) {
        self.stats.crashes += 1;
        // Bytes behind a lying flush die with the cache.
        self.limbo.clear();
        // The unflushed tail tears (a prefix lands) or vanishes whole.
        if !self.tail.is_empty() && self.rng.chance(self.plan.torn_write) {
            let keep = self.rng.next_below(self.tail.len() as u64 + 1) as usize;
            if keep > 0 {
                self.stats.torn_writes += 1;
                self.durable.extend_from_slice(&self.tail[..keep]);
            }
        }
        self.tail.clear();
    }

    fn read_back(&mut self) -> Vec<u8> {
        let mut out = self.durable.clone();
        out.extend_from_slice(&self.limbo);
        out.extend_from_slice(&self.tail);
        if !out.is_empty() && self.rng.chance(self.plan.read_rot) {
            self.stats.rotted_reads += 1;
            let flips = 1 + self.rng.next_below(self.plan.rot_bits.max(1) as u64) as u32;
            for _ in 0..flips {
                let byte = self.rng.next_below(out.len() as u64) as usize;
                let bit = self.rng.next_below(8) as u8;
                out[byte] ^= 1 << bit;
            }
        }
        out
    }

    fn reset(&mut self) {
        self.durable.clear();
        self.limbo.clear();
        self.tail.clear();
    }
}

/// Persists a byte image through a medium the way a journaling process
/// would: `chunk`-sized appends with a flush barrier after each, so a
/// later [`Media::crash`] exercises torn tails and lost flushes at
/// realistic boundaries. Stops at the first refusal.
pub fn persist_through<M: Media>(
    media: &mut M,
    bytes: &[u8],
    chunk: usize,
) -> Result<(), MediaError> {
    for piece in bytes.chunks(chunk.max(1)) {
        media.append(piece)?;
        media.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_media_is_a_perfect_store() {
        let mut m = VecMedia::new();
        m.append(b"abc").unwrap();
        m.crash(); // loses nothing
        m.append(b"def").unwrap();
        m.flush().unwrap();
        assert_eq!(m.read_back(), b"abcdef");
        assert_eq!(m.bytes(), b"abcdef");
        m.reset();
        assert!(m.read_back().is_empty());
    }

    #[test]
    fn faultless_plan_matches_vec_media_byte_for_byte() {
        let mut perfect = VecMedia::new();
        let mut hostile = FaultMedia::new(MediaFaultPlan::none(0x5EED));
        for chunk in [b"PINJRNL1".as_slice(), &[0u8; 32], b"record-1", b"record-2"] {
            perfect.append(chunk).unwrap();
            hostile.append(chunk).unwrap();
            perfect.flush().unwrap();
            hostile.flush().unwrap();
        }
        hostile.crash();
        assert_eq!(perfect.read_back(), hostile.read_back());
        assert_eq!(
            hostile.stats(),
            MediaStats {
                appends: 4,
                flushes: 4,
                crashes: 1,
                ..MediaStats::default()
            }
        );
    }

    #[test]
    fn unflushed_tail_dies_or_tears_at_crash() {
        // Whole-loss plan: torn_write = 0 ⇒ the tail vanishes entirely.
        let mut m = FaultMedia::new(MediaFaultPlan::none(1));
        m.append(b"flushed").unwrap();
        m.flush().unwrap();
        m.append(b"volatile").unwrap();
        m.crash();
        assert_eq!(m.read_back(), b"flushed");

        // Torn plan: some prefix of the tail may land, never a suffix.
        let mut any_torn = false;
        for seed in 0..32u64 {
            let mut m = FaultMedia::new(MediaFaultPlan::torn(seed));
            m.append(b"flushed|").unwrap();
            m.flush().unwrap();
            m.append(b"0123456789").unwrap();
            m.crash();
            let got = m.read_back();
            assert!(got.starts_with(b"flushed|"), "flushed data must survive");
            let tail = &got[8..];
            assert!(b"0123456789".starts_with(tail), "tail must be a prefix");
            any_torn |= !tail.is_empty() && tail.len() < 10;
        }
        assert!(any_torn, "32 seeds must tear at least one tail mid-way");
    }

    #[test]
    fn lying_flush_loses_data_at_crash_only() {
        let plan = MediaFaultPlan {
            lost_flush: 1.0,
            ..MediaFaultPlan::none(7)
        };
        let mut m = FaultMedia::new(plan);
        m.append(b"doomed").unwrap();
        m.flush().unwrap(); // lies
        assert_eq!(m.read_back(), b"doomed", "pre-crash reads see the cache");
        m.crash();
        assert!(m.read_back().is_empty(), "the lying flush never persisted");
        assert_eq!(m.stats().lost_flushes, 1);
    }

    #[test]
    fn read_rot_flips_bits_deterministically() {
        let run = |seed: u64| {
            let mut m = FaultMedia::new(MediaFaultPlan::bit_rot(seed));
            m.append(&[0u8; 64]).unwrap();
            m.flush().unwrap();
            m.read_back()
        };
        assert_eq!(run(3), run(3), "same seed, same rot");
        assert_ne!(run(3), vec![0u8; 64], "rot must flip something");
        let mut m = FaultMedia::new(MediaFaultPlan::bit_rot(3));
        m.append(&[0u8; 64]).unwrap();
        m.flush().unwrap();
        m.read_back();
        assert_eq!(m.stats().rotted_reads, 1);
    }

    #[test]
    fn capacity_refuses_with_nospace_and_keeps_prior_bytes() {
        let mut m = FaultMedia::new(MediaFaultPlan::tight(9, 10));
        m.append(b"0123456").unwrap();
        m.flush().unwrap();
        assert_eq!(m.append(b"89abc"), Err(MediaError::NoSpace));
        m.append(b"89a").unwrap(); // exactly fills
        assert_eq!(m.stats().nospace_rejections, 1);
        m.crash();
        assert!(m.read_back().starts_with(b"0123456"));
    }

    #[test]
    fn duplicated_segments_land_twice() {
        let plan = MediaFaultPlan {
            duplicate_segment: 1.0,
            ..MediaFaultPlan::none(11)
        };
        let mut m = FaultMedia::new(plan);
        m.append(b"ab").unwrap();
        m.flush().unwrap();
        assert_eq!(m.read_back(), b"abab");
        assert_eq!(m.stats().duplicated_segments, 1);
    }

    #[test]
    fn persist_through_chunks_and_flushes() {
        let mut m = VecMedia::new();
        persist_through(&mut m, b"hello world", 4).unwrap();
        assert_eq!(m.read_back(), b"hello world");

        let mut tight = FaultMedia::new(MediaFaultPlan::tight(2, 6));
        assert_eq!(
            persist_through(&mut tight, b"hello world", 4),
            Err(MediaError::NoSpace)
        );
    }
}
