//! Bounded retries with exponential backoff and seeded jitter.
//!
//! The policy itself is a plain value; the jitter draw comes from an
//! **explicit RNG handle** the caller derives once per logical task (per
//! app in the dynamic pipeline, per request in `pinning-serve`). Because
//! the handle is owned by the task rather than by the policy, two tasks
//! retrying concurrently can never interleave draws — replays are
//! byte-identical at any concurrency.

use pinning_crypto::SplitMix64;

/// Bounded retry with deterministic backoff for faulted work.
///
/// The paper's operators re-queued apps whose runs failed and gave up
/// after a few tries; this policy reproduces that loop on the virtual
/// clock. Backoff doubles per retry, plus a seeded jitter so re-queued
/// tasks don't thunder back in lockstep; the deadline bounds total virtual
/// time spent on one task (settle + capture windows + backoff in the
/// dynamic pipeline, queue + service time in the serve layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per task, ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the first retry, seconds; doubles each retry.
    pub backoff_secs: u32,
    /// Jitter added to each backoff, as a percentage of the doubled base
    /// (0 = none). Drawn deterministically from the RNG handle the caller
    /// passes to [`RetryPolicy::backoff_before`], so replays stay
    /// bit-identical.
    pub jitter_pct: u32,
    /// Virtual-time budget for one task, seconds.
    pub deadline_secs: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // 3 attempts × 2 runs × (≤120 s settle + 30 s window) plus 30+60 s
        // of backoff (and ≤50% jitter on each) fits; the deadline only
        // triggers on pathological settings.
        RetryPolicy {
            max_attempts: 3,
            backoff_secs: 30,
            jitter_pct: 50,
            deadline_secs: 1800,
        }
    }
}

impl RetryPolicy {
    /// The backoff to wait before `attempt` (0-based), drawing jitter from
    /// the caller's task-scoped RNG handle.
    ///
    /// Attempt 0 is the first try — no backoff, and **no RNG draw**, so a
    /// task that never retries leaves its jitter stream untouched. For
    /// attempt `n ≥ 1` the base is `backoff_secs · 2^(n-1)` and the jitter
    /// is uniform in `[0, base · jitter_pct / 100]`; a zero-width jitter
    /// span also draws nothing, keeping the stream alignment independent
    /// of the jitter setting.
    pub fn backoff_before(&self, attempt: u32, rng: &mut SplitMix64) -> u64 {
        if attempt == 0 {
            return 0;
        }
        let base = (self.backoff_secs as u64) << (attempt - 1);
        let span = base * self.jitter_pct as u64 / 100;
        let jitter = if span > 0 {
            rng.next_below(span + 1)
        } else {
            0
        };
        base + jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempt_zero_is_free_and_draws_nothing() {
        let policy = RetryPolicy::default();
        let mut rng = SplitMix64::new(7);
        let before = rng.next_u64();
        let mut rng = SplitMix64::new(7);
        assert_eq!(policy.backoff_before(0, &mut rng), 0);
        // The stream is untouched: the next draw matches a fresh RNG's.
        assert_eq!(rng.next_u64(), before);
    }

    #[test]
    fn backoff_doubles_and_jitter_is_bounded() {
        let policy = RetryPolicy {
            max_attempts: 4,
            backoff_secs: 30,
            jitter_pct: 50,
            deadline_secs: 1800,
        };
        let mut rng = SplitMix64::new(42).derive("backoff/test");
        for attempt in 1..4u32 {
            let base = 30u64 << (attempt - 1);
            let wait = policy.backoff_before(attempt, &mut rng);
            assert!(wait >= base, "attempt {attempt}: {wait} < base {base}");
            assert!(
                wait <= base + base / 2,
                "attempt {attempt}: {wait} over jitter cap"
            );
        }
    }

    #[test]
    fn zero_jitter_draws_nothing() {
        let policy = RetryPolicy {
            jitter_pct: 0,
            ..RetryPolicy::default()
        };
        let mut rng = SplitMix64::new(9);
        let probe = SplitMix64::new(9).next_u64();
        assert_eq!(policy.backoff_before(1, &mut rng), 30);
        assert_eq!(policy.backoff_before(2, &mut rng), 60);
        assert_eq!(rng.next_u64(), probe, "jitter-free backoff must not draw");
    }

    #[test]
    fn same_handle_same_sequence() {
        let policy = RetryPolicy::default();
        let runs: Vec<Vec<u64>> = (0..2)
            .map(|_| {
                let mut rng = SplitMix64::new(0xfeed).derive("backoff/app-1");
                (0..5).map(|a| policy.backoff_before(a, &mut rng)).collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }
}
