//! Deterministic work-budget deadlines.
//!
//! Real serving stacks propagate wall-clock deadlines; a deterministic
//! simulation cannot read a wall clock without destroying replayability.
//! Instead a [`Deadline`] carries a *work budget* measured in virtual
//! ticks, and every expensive operation along the call tree — screening a
//! certificate, verifying a signature, building a Merkle authenticator —
//! charges its cost against the token before doing the work. The instant
//! a charge would overrun the budget the callee returns
//! [`DeadlineExceeded`] and abandons everything downstream, so a request
//! whose deadline passes mid-chain-verification yields a structured
//! timeout, never a partial verdict.
//!
//! One tick is one virtual work unit (roughly a virtual microsecond in
//! the serve layer's cost model). Costs are fixed constants per
//! operation, so the tick at which a given request times out is a pure
//! function of its input — independent of host speed, thread count, and
//! scheduling.

use std::cell::Cell;
use std::fmt;

/// Structured timeout: the work budget ran out before the operation
/// finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineExceeded;

impl fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deadline exceeded before the operation completed")
    }
}

impl std::error::Error for DeadlineExceeded {}

/// A work-budget deadline token threaded through a call tree.
///
/// Thread-confined by design (interior `Cell`): each request's call stack
/// creates and owns its token, so charging needs only `&self` and no
/// synchronisation.
#[derive(Debug)]
pub struct Deadline {
    budget: u64,
    spent: Cell<u64>,
}

impl Deadline {
    /// A deadline that never expires (offline library calls).
    pub fn unlimited() -> Self {
        Deadline {
            budget: u64::MAX,
            spent: Cell::new(0),
        }
    }

    /// A deadline with `budget` work units remaining.
    pub fn with_budget(budget: u64) -> Self {
        Deadline {
            budget,
            spent: Cell::new(0),
        }
    }

    /// Charges `units` of work against the budget.
    ///
    /// On overrun the spent counter saturates at the budget (so elapsed
    /// accounting stays exact) and every later charge keeps failing: a
    /// deadline, once blown, stays blown.
    pub fn charge(&self, units: u64) -> Result<(), DeadlineExceeded> {
        let spent = self.spent.get();
        let after = spent.saturating_add(units);
        if after > self.budget {
            self.spent.set(self.budget);
            Err(DeadlineExceeded)
        } else {
            self.spent.set(after);
            Ok(())
        }
    }

    /// Work units charged so far (capped at the budget after an overrun).
    pub fn spent(&self) -> u64 {
        self.spent.get()
    }

    /// Work units left before the deadline trips.
    pub fn remaining(&self) -> u64 {
        self.budget - self.spent.get()
    }

    /// Whether the budget is fully consumed.
    pub fn is_expired(&self) -> bool {
        self.spent.get() >= self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_until_the_budget() {
        let d = Deadline::with_budget(10);
        assert!(d.charge(4).is_ok());
        assert!(d.charge(6).is_ok());
        assert_eq!(d.spent(), 10);
        assert_eq!(d.remaining(), 0);
        assert!(d.is_expired());
    }

    #[test]
    fn overrun_fails_and_saturates_spent() {
        let d = Deadline::with_budget(10);
        assert!(d.charge(7).is_ok());
        assert_eq!(d.charge(5), Err(DeadlineExceeded));
        // Spent saturates at the budget, not 12, so latency accounting
        // reads "the full deadline elapsed".
        assert_eq!(d.spent(), 10);
        assert!(d.is_expired());
        // Once blown, stays blown for any further nonzero work.
        assert_eq!(d.charge(1), Err(DeadlineExceeded));
    }

    #[test]
    fn unlimited_never_expires() {
        let d = Deadline::unlimited();
        for _ in 0..1000 {
            assert!(d.charge(u32::MAX as u64).is_ok());
        }
        assert!(!d.is_expired());
    }

    #[test]
    fn zero_budget_rejects_any_work() {
        let d = Deadline::with_budget(0);
        assert!(d.is_expired());
        assert_eq!(d.charge(1), Err(DeadlineExceeded));
        assert!(d.charge(0).is_ok());
    }
}
