//! Shared journal recovery: one checksummed frame format, one scrubber,
//! one checkpoint discipline.
//!
//! PINJRNL1 (`pinning-core::journal`) and STRMJRN1
//! (`pinning-core::stream`) write physically identical records — a
//! `[payload len: u32 LE][SHA-256(payload)][payload]` frame — and until
//! this module each carried its own copy of the longest-intact-prefix
//! reader. Both now call [`append_frame`] on the write path and either
//! [`read_frames_strict`] (the historical stop-at-first-damage reader)
//! or [`scrub_frames`] (the self-healing reader) on the open path.
//!
//! ## Scrubbing
//!
//! Real media damage is rarely a clean tail cut: a rotted bit in the
//! middle of a journal destroys one frame, not everything after it.
//! [`scrub_frames`] verifies every checksum; on damage it *resyncs* —
//! scans forward for the next byte offset at which a checksum-valid
//! frame begins — and keeps reading. The damaged span is quarantined and
//! counted in [`ScrubStats`]. Resync is sound for every journal in this
//! workspace because records are keyed (app index, shard index) and
//! idempotent, so recovering frames beyond a damaged region can never
//! splice the wrong data into the wrong slot; a 256-bit checksum makes
//! an accidental mid-payload match not a practical concern. Duplicated
//! segments (a retried write landing twice) surface as consecutive
//! byte-identical frames; no journal format here legitimately produces
//! them, so the scrubber drops the copy and counts a repair.
//!
//! The invariant, shared with the chaos suite: **byte-identical or
//! explicitly degraded, never silently wrong.** Every discarded byte is
//! visible in the stats that end up in the run-health table.
//!
//! ## Checkpoints
//!
//! [`CheckpointStore`] writes generation-stamped images alternately into
//! two [`Media`] slots, so a crash — or an ENOSPC, or a torn write —
//! while writing generation *g* always leaves generation *g−1* intact in
//! the other slot. [`CheckpointStore::load`] picks the newest slot that
//! validates and reports whether it had to fall back past a damaged one.

use crate::media::{Media, MediaError};
use pinning_crypto::sha256;

/// Per-frame overhead: the u32 length word plus the SHA-256 checksum.
pub const FRAME_OVERHEAD: usize = 4 + 32;

/// Appends one checksummed frame: `[len u32 LE][sha256(payload)][payload]`.
///
/// Byte-identical to what PINJRNL1 and STRMJRN1 historically wrote
/// inline.
pub fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&sha256(payload));
    out.extend_from_slice(payload);
}

/// Repair and quarantine telemetry from one scrub pass.
///
/// Aggregated across journals into the run-health table; the rule is
/// that any nonzero field means the journal was *explicitly degraded* —
/// the bytes are gone, but their absence is accounted for.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubStats {
    /// Bytes discarded: damaged spans, dropped duplicates, torn tails.
    pub quarantined_bytes: u64,
    /// Damaged regions in the middle of the journal, each of which
    /// destroyed at least one record (a torn *tail* counts bytes only —
    /// it is the expected crash artifact, not a lost record).
    pub quarantined_records: u32,
    /// Self-heals: resyncs past damage plus dropped duplicate segments.
    pub repairs: u32,
    /// Checkpoint loads that fell back past a damaged slot.
    pub checkpoints_recovered: u32,
}

impl ScrubStats {
    /// Accumulates another scrub's telemetry into this one.
    pub fn absorb(&mut self, other: ScrubStats) {
        self.quarantined_bytes += other.quarantined_bytes;
        self.quarantined_records += other.quarantined_records;
        self.repairs += other.repairs;
        self.checkpoints_recovered += other.checkpoints_recovered;
    }

    /// Whether the journal read back exactly as written.
    pub fn is_clean(&self) -> bool {
        *self == ScrubStats::default()
    }
}

/// The outcome of reading a frame stream: recovered payloads plus the
/// accounting for everything that was not recovered.
#[derive(Debug, Clone)]
pub struct RecoveredFrames<'a> {
    /// Checksum-valid payloads, in on-media order, duplicates dropped.
    pub frames: Vec<&'a [u8]>,
    /// What the scrubber quarantined and repaired.
    pub stats: ScrubStats,
}

/// Parses the frame at `bytes[pos..]`; returns `(payload, frame_len)` if
/// the frame is complete and its checksum verifies.
fn frame_at(bytes: &[u8], pos: usize) -> Option<(&[u8], usize)> {
    let rest = &bytes[pos..];
    if rest.len() < FRAME_OVERHEAD {
        return None;
    }
    let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
    // A flipped bit in the length word can claim gigabytes; bound it by
    // what is actually present before touching the payload.
    if len > rest.len() - FRAME_OVERHEAD {
        return None;
    }
    let payload = &rest[FRAME_OVERHEAD..FRAME_OVERHEAD + len];
    if sha256(payload).as_slice() != &rest[4..FRAME_OVERHEAD] {
        return None;
    }
    Some((payload, FRAME_OVERHEAD + len))
}

/// The historical reader: the longest intact prefix of frames starting
/// at `start`, stopping at the first torn, corrupt, or wild-length
/// frame. Everything after the stop point is quarantined.
///
/// This is the "direct read path" the scrubber's overhead is benchmarked
/// against.
pub fn read_frames_strict(bytes: &[u8], start: usize) -> RecoveredFrames<'_> {
    let mut frames = Vec::new();
    let mut pos = start;
    while pos < bytes.len() {
        match frame_at(bytes, pos) {
            Some((payload, advance)) => {
                frames.push(payload);
                pos += advance;
            }
            None => break,
        }
    }
    RecoveredFrames {
        frames,
        stats: ScrubStats {
            quarantined_bytes: (bytes.len() - pos) as u64,
            ..ScrubStats::default()
        },
    }
}

/// The self-healing reader: verifies every checksum from `start`, and on
/// damage resyncs to the next valid frame instead of abandoning the rest
/// of the journal.
///
/// On a clean journal this does exactly the strict reader's work plus
/// one payload comparison per frame (the duplicate check), which is why
/// the scrub-overhead bench gate can demand ≤2%.
pub fn scrub_frames(bytes: &[u8], start: usize) -> RecoveredFrames<'_> {
    let mut frames: Vec<&[u8]> = Vec::new();
    let mut stats = ScrubStats::default();
    let mut pos = start;
    while pos < bytes.len() {
        if let Some((payload, advance)) = frame_at(bytes, pos) {
            if frames.last() == Some(&payload) {
                // A duplicated segment: the same frame landed twice in a
                // row. No format here emits consecutive identical
                // records, so drop the copy and count the repair.
                stats.quarantined_bytes += advance as u64;
                stats.repairs += 1;
            } else {
                frames.push(payload);
            }
            pos += advance;
            continue;
        }
        // Damage at `pos`. Scan forward for the next offset at which a
        // checksum-valid frame begins; the skipped span is quarantined.
        let mut probe = pos + 1;
        let mut resynced = false;
        while probe + FRAME_OVERHEAD <= bytes.len() {
            if frame_at(bytes, probe).is_some() {
                stats.quarantined_bytes += (probe - pos) as u64;
                stats.quarantined_records += 1;
                stats.repairs += 1;
                pos = probe;
                resynced = true;
                break;
            }
            probe += 1;
        }
        if !resynced {
            // No intact frame anywhere ahead: a torn tail (or terminal
            // garbage). Quarantine the remainder and stop.
            stats.quarantined_bytes += (bytes.len() - pos) as u64;
            break;
        }
    }
    RecoveredFrames { frames, stats }
}

/// Magic bytes opening every checkpoint slot image (format version 1).
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"PINCKPT1";

/// Slot header: magic plus the u64 generation stamp.
const SLOT_HEADER: usize = 8 + 8;

/// A checkpoint image recovered by [`CheckpointStore::load`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredCheckpoint {
    /// Generation stamp of the image that validated.
    pub generation: u64,
    /// The checkpoint payload, exactly as saved.
    pub payload: Vec<u8>,
    /// Whether a non-empty slot failed validation and the load fell back
    /// to the surviving one (stale-checkpoint recovery).
    pub fell_back: bool,
}

/// Generation-stamped, double-buffered checkpoint storage over two
/// [`Media`] slots.
///
/// Slot image: `"PINCKPT1" ‖ generation (u64 LE) ‖ frame(payload)`.
/// Generation *g* is written to slot *g mod 2*, so consecutive saves
/// alternate slots and a failure while writing generation *g* — crash,
/// torn write, ENOSPC — can only damage the slot holding the *older*
/// image; generation *g−1* survives untouched in the other slot.
#[derive(Debug, Clone)]
pub struct CheckpointStore<M: Media> {
    slots: [M; 2],
    generation: u64,
}

impl CheckpointStore<crate::media::VecMedia> {
    /// A checkpoint store over two perfect in-memory slots.
    pub fn in_memory() -> Self {
        CheckpointStore::new(crate::media::VecMedia::new(), crate::media::VecMedia::new())
    }
}

impl<M: Media> CheckpointStore<M> {
    /// A checkpoint store over two fresh slots (generation 0 = nothing
    /// saved yet). To reopen existing media after a restart, construct
    /// over them and call [`load`](Self::load) — it re-learns the
    /// current generation from the slot stamps.
    pub fn new(slot_a: M, slot_b: M) -> Self {
        CheckpointStore {
            slots: [slot_a, slot_b],
            generation: 0,
        }
    }

    /// Saves `payload` as the next generation, returning its stamp.
    ///
    /// On failure (e.g. [`MediaError::NoSpace`]) the target slot is left
    /// trashed but the previous generation — in the *other* slot — is
    /// untouched, and the store's generation does not advance; a retry
    /// rewrites the same slot.
    pub fn save(&mut self, payload: &[u8]) -> Result<u64, MediaError> {
        let candidate = self.generation + 1;
        let slot = &mut self.slots[(candidate % 2) as usize];
        slot.reset();
        let mut image = Vec::with_capacity(SLOT_HEADER + FRAME_OVERHEAD + payload.len());
        image.extend_from_slice(CHECKPOINT_MAGIC);
        image.extend_from_slice(&candidate.to_le_bytes());
        append_frame(&mut image, payload);
        slot.append(&image)?;
        slot.flush()?;
        self.generation = candidate;
        Ok(candidate)
    }

    /// Crashes both slots (the process and its page cache die).
    pub fn crash(&mut self) {
        for slot in &mut self.slots {
            slot.crash();
        }
    }

    /// Loads the newest checkpoint that validates, if any.
    ///
    /// Each slot must read back with intact magic, generation stamp, and
    /// a checksum-valid frame; the newest valid generation wins. A
    /// non-empty slot that fails validation (torn, rotted, stale partial
    /// write) sets [`RecoveredCheckpoint::fell_back`] on the result —
    /// that is the "checkpoints recovered" count in run health. Also
    /// re-learns the store's generation counter from the stamps, so a
    /// store reopened over existing media resumes the alternation
    /// correctly.
    pub fn load(&mut self) -> Option<RecoveredCheckpoint> {
        let mut best: Option<(u64, Vec<u8>)> = None;
        let mut damaged_slots = 0u32;
        for slot in &mut self.slots {
            let image = slot.read_back();
            if image.is_empty() {
                continue;
            }
            match parse_slot(&image) {
                Some((generation, payload)) => {
                    if best.as_ref().map(|(g, _)| generation > *g).unwrap_or(true) {
                        best = Some((generation, payload));
                    }
                }
                None => damaged_slots += 1,
            }
        }
        let (generation, payload) = best?;
        self.generation = self.generation.max(generation);
        Some(RecoveredCheckpoint {
            generation,
            payload,
            fell_back: damaged_slots > 0,
        })
    }
}

/// Validates one slot image, returning `(generation, payload)`.
fn parse_slot(image: &[u8]) -> Option<(u64, Vec<u8>)> {
    if image.len() < SLOT_HEADER || &image[..8] != CHECKPOINT_MAGIC {
        return None;
    }
    let generation = u64::from_le_bytes(image[8..SLOT_HEADER].try_into().ok()?);
    let (payload, advance) = frame_at(image, SLOT_HEADER)?;
    // A duplicated-segment fault can append the image twice; the first
    // intact frame is the checkpoint, anything after it is ignored.
    let _ = advance;
    Some((generation, payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::{FaultMedia, Media, MediaFaultPlan, VecMedia};

    fn stream(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        for p in payloads {
            append_frame(&mut out, p);
        }
        out
    }

    #[test]
    fn strict_and_scrub_agree_on_clean_streams() {
        let bytes = stream(&[b"alpha", b"beta", b"", b"gamma-long-payload"]);
        let strict = read_frames_strict(&bytes, 0);
        let scrub = scrub_frames(&bytes, 0);
        assert_eq!(strict.frames, scrub.frames);
        assert_eq!(strict.frames.len(), 4);
        assert!(strict.stats.is_clean());
        assert!(scrub.stats.is_clean());
    }

    #[test]
    fn strict_stops_at_damage_scrub_resyncs_past_it() {
        let mut bytes = stream(&[b"record-one", b"record-two", b"record-three"]);
        // Flip a bit inside record two's payload.
        let one = FRAME_OVERHEAD + 10;
        bytes[one + FRAME_OVERHEAD + 3] ^= 0x40;

        let strict = read_frames_strict(&bytes, 0);
        assert_eq!(strict.frames, vec![b"record-one".as_slice()]);
        assert_eq!(strict.stats.quarantined_bytes, (bytes.len() - one) as u64);

        let scrub = scrub_frames(&bytes, 0);
        assert_eq!(
            scrub.frames,
            vec![b"record-one".as_slice(), b"record-three".as_slice()],
            "scrub must recover the record beyond the damage"
        );
        assert_eq!(scrub.stats.quarantined_records, 1);
        assert_eq!(scrub.stats.repairs, 1);
        assert_eq!(
            scrub.stats.quarantined_bytes,
            (FRAME_OVERHEAD + 10) as u64,
            "exactly record two's frame is quarantined"
        );
    }

    #[test]
    fn scrub_survives_wild_length_fields() {
        let mut bytes = stream(&[b"aaaa", b"bbbb", b"cccc"]);
        bytes[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let scrub = scrub_frames(&bytes, 0);
        assert_eq!(scrub.frames, vec![b"bbbb".as_slice(), b"cccc".as_slice()]);
        assert_eq!(scrub.stats.quarantined_records, 1);

        let strict = read_frames_strict(&bytes, 0);
        assert!(strict.frames.is_empty());
    }

    #[test]
    fn torn_tail_counts_bytes_but_not_records() {
        let bytes = stream(&[b"head", b"tail-record"]);
        let cut = &bytes[..bytes.len() - 5];
        let scrub = scrub_frames(cut, 0);
        assert_eq!(scrub.frames, vec![b"head".as_slice()]);
        assert_eq!(
            scrub.stats.quarantined_records, 0,
            "a torn tail is expected"
        );
        assert_eq!(
            scrub.stats.quarantined_bytes,
            (FRAME_OVERHEAD + 11 - 5) as u64
        );
        assert_eq!(scrub.stats.repairs, 0);
    }

    #[test]
    fn duplicated_frames_are_dropped_as_repairs() {
        let mut bytes = Vec::new();
        append_frame(&mut bytes, b"once");
        append_frame(&mut bytes, b"twice");
        append_frame(&mut bytes, b"twice");
        append_frame(&mut bytes, b"thrice");
        let scrub = scrub_frames(&bytes, 0);
        assert_eq!(
            scrub.frames,
            vec![
                b"once".as_slice(),
                b"twice".as_slice(),
                b"thrice".as_slice()
            ]
        );
        assert_eq!(scrub.stats.repairs, 1);
        assert_eq!(scrub.stats.quarantined_records, 0);
        assert_eq!(scrub.stats.quarantined_bytes, (FRAME_OVERHEAD + 5) as u64);
    }

    #[test]
    fn all_garbage_quarantines_everything() {
        let bytes = vec![0x5A; 200];
        let scrub = scrub_frames(&bytes, 0);
        assert!(scrub.frames.is_empty());
        assert_eq!(scrub.stats.quarantined_bytes, 200);
    }

    #[test]
    fn scrub_of_seeded_random_damage_never_panics_and_accounts_every_byte() {
        use pinning_crypto::SplitMix64;
        let payloads: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 3 + i as usize * 7]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let clean = stream(&refs);
        let mut rng = SplitMix64::new(0xDA_11A6E);
        for _ in 0..200 {
            let mut bytes = clean.clone();
            for _ in 0..1 + rng.next_below(4) {
                let at = rng.next_below(bytes.len() as u64) as usize;
                bytes[at] ^= 1 << rng.next_below(8);
            }
            let scrub = scrub_frames(&bytes, 0);
            let recovered: u64 = scrub
                .frames
                .iter()
                .map(|f| (f.len() + FRAME_OVERHEAD) as u64)
                .sum();
            assert_eq!(
                recovered + scrub.stats.quarantined_bytes,
                bytes.len() as u64,
                "every byte is either recovered or quarantined"
            );
        }
    }

    #[test]
    fn checkpoint_roundtrip_and_generation_alternation() {
        let mut store = CheckpointStore::in_memory();
        assert!(store.load().is_none());
        assert_eq!(store.save(b"gen-one").unwrap(), 1);
        assert_eq!(store.save(b"gen-two").unwrap(), 2);
        assert_eq!(store.save(b"gen-three").unwrap(), 3);
        let got = store.load().unwrap();
        assert_eq!(got.generation, 3);
        assert_eq!(got.payload, b"gen-three");
        assert!(!got.fell_back);
    }

    #[test]
    fn crash_mid_save_falls_back_to_previous_generation() {
        // Every unflushed byte is torn at crash; the flush lies half the
        // time, so some saves never reach durable media.
        let plan = MediaFaultPlan {
            lost_flush: 1.0,
            ..MediaFaultPlan::none(77)
        };
        // Generation 1 lands in slot 1 (honest), generation 2 in slot 0
        // (every flush lies), so the crash erases only the newer image.
        let mut store = CheckpointStore::new(
            FaultMedia::new(plan),
            FaultMedia::new(MediaFaultPlan::none(1)),
        );
        store.save(b"good").unwrap();
        store.save(b"doomed").unwrap();
        store.crash();
        let got = store.load().unwrap();
        assert_eq!(got.payload, b"good");
        assert_eq!(got.generation, 1);
        assert!(!got.fell_back, "slot 0 crashed back to empty, not damaged");
    }

    #[test]
    fn rotted_slot_is_detected_and_fallback_reported() {
        let mut a = VecMedia::new();
        let mut b = VecMedia::new();
        {
            // Write two generations, then reopen the raw slot images the
            // way a restarted process would.
            let mut writer = CheckpointStore::new(&mut a, &mut b);
            writer.save(b"old").unwrap();
            writer.save(b"new").unwrap();
        }
        // Rot the newer image (generation 2 lives in slot 0).
        let mut img = a.read_back();
        let last = img.len() - 1;
        img[last] ^= 0x01;
        let mut store = CheckpointStore::new(VecMedia::from_bytes(img), b);
        let got = store.load().unwrap();
        assert_eq!(got.payload, b"old");
        assert_eq!(got.generation, 1);
        assert!(got.fell_back, "the damaged newer slot must be reported");
        // The re-learned generation keeps alternation safe: the next save
        // must overwrite the *damaged* slot, not the surviving one.
        assert_eq!(store.save(b"repaired").unwrap(), 2);
        let again = store.load().unwrap();
        assert_eq!(again.payload, b"repaired");
    }

    #[test]
    fn nospace_save_keeps_previous_checkpoint() {
        // Odd generations land in slot 1 (unbounded); even generations in
        // slot 0, which is too small for any image (header 16 + frame 36).
        let mut store = CheckpointStore::new(
            FaultMedia::new(MediaFaultPlan::tight(5, 40)),
            FaultMedia::new(MediaFaultPlan::none(5)),
        );
        assert_eq!(store.save(b"first").unwrap(), 1);
        assert_eq!(store.save(b"second"), Err(MediaError::NoSpace));
        let got = store.load().unwrap();
        assert_eq!(got.payload, b"first", "failed save must not lose gen 1");
        // Retry goes back to the same tight slot and fails again; the
        // surviving checkpoint stays loadable throughout.
        assert_eq!(store.save(b"third"), Err(MediaError::NoSpace));
        assert_eq!(store.load().unwrap().payload, b"first");
    }
}
