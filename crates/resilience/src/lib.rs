//! Shared overload-robustness primitives.
//!
//! Three mechanisms recur wherever this workspace talks to something that
//! can fail or fall behind — the netsim test bed (PR 3), the dynamic
//! measurement pipeline, and the `pinning-serve` request front end:
//!
//! * [`breaker`] — the three-state circuit breaker
//!   (closed → open → half-open) that stops persistently failing endpoints
//!   from consuming retry budget. Generic over the fault payload so the
//!   netsim test bed (fault kinds) and the serving layer (backend faults)
//!   share one implementation and one test suite.
//! * [`retry`] — [`RetryPolicy`]: bounded attempts with exponential
//!   backoff and seeded jitter. The jitter draw comes from an **explicit
//!   RNG handle** the caller derives per logical task, so replays are
//!   byte-identical at any concurrency.
//! * [`deadline`] — [`Deadline`]: a deterministic *work-budget* deadline
//!   token threaded through expensive call trees (chain validation, Merkle
//!   proof generation). Work is charged in virtual ticks; the moment the
//!   budget is exhausted the callee abandons the remaining work with a
//!   structured [`DeadlineExceeded`], never a partial result.
//!
//! PR 10 adds the durable-storage layer underneath the journals:
//!
//! * [`media`] — the [`Media`] storage contract (append / flush / crash /
//!   read-back) with the perfect [`VecMedia`] and the seeded hostile
//!   [`FaultMedia`] driven by a [`MediaFaultPlan`] (torn writes, lying
//!   flushes, read-back bit rot, ENOSPC, duplicated segments).
//! * [`recovery`] — the one shared checksummed-frame reader
//!   (PINJRNL1 and STRMJRN1 write physically identical records), both as
//!   the historical strict prefix reader and as the self-healing
//!   [`scrub_frames`] scrubber, plus generation-stamped double-buffered
//!   [`CheckpointStore`] checkpoints.
//!
//! Everything here is deterministic by construction: no wall clocks, no
//! global state, no OS randomness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod deadline;
pub mod media;
pub mod recovery;
pub mod retry;

pub use breaker::{Admission, BreakerConfig, BreakerSet, BreakerState};
pub use deadline::{Deadline, DeadlineExceeded};
pub use media::{
    persist_through, FaultMedia, Media, MediaError, MediaFaultPlan, MediaStats, VecMedia,
};
pub use recovery::{
    append_frame, read_frames_strict, scrub_frames, CheckpointStore, RecoveredCheckpoint,
    RecoveredFrames, ScrubStats, FRAME_OVERHEAD,
};
pub use retry::RetryPolicy;
