//! Shared overload-robustness primitives.
//!
//! Three mechanisms recur wherever this workspace talks to something that
//! can fail or fall behind — the netsim test bed (PR 3), the dynamic
//! measurement pipeline, and the `pinning-serve` request front end:
//!
//! * [`breaker`] — the three-state circuit breaker
//!   (closed → open → half-open) that stops persistently failing endpoints
//!   from consuming retry budget. Generic over the fault payload so the
//!   netsim test bed (fault kinds) and the serving layer (backend faults)
//!   share one implementation and one test suite.
//! * [`retry`] — [`RetryPolicy`]: bounded attempts with exponential
//!   backoff and seeded jitter. The jitter draw comes from an **explicit
//!   RNG handle** the caller derives per logical task, so replays are
//!   byte-identical at any concurrency.
//! * [`deadline`] — [`Deadline`]: a deterministic *work-budget* deadline
//!   token threaded through expensive call trees (chain validation, Merkle
//!   proof generation). Work is charged in virtual ticks; the moment the
//!   budget is exhausted the callee abandons the remaining work with a
//!   structured [`DeadlineExceeded`], never a partial result.
//!
//! Everything here is deterministic by construction: no wall clocks, no
//! global state, no OS randomness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod deadline;
pub mod retry;

pub use breaker::{Admission, BreakerConfig, BreakerSet, BreakerState};
pub use deadline::{Deadline, DeadlineExceeded};
pub use retry::RetryPolicy;
