//! Property-style tests for the longitudinal engine, driven by seeded
//! sweeps (no external crates, fully offline). Three families:
//!
//! 1. Fingerprint permutation invariance: shuffling set-like app fields
//!    (SDK names, domain lists) never changes the fingerprint, so
//!    `HashMap` iteration order or manifest field order can't dirty an
//!    app.
//! 2. Event/touched lockstep: applying any single [`EpochEvent`] flips
//!    the fingerprints of *exactly* the apps `touched_apps` predicted.
//! 3. Kill-and-resume: a run killed mid-epoch and resumed — even in a
//!    "fresh process" rebuilt from persisted state — renders its delta
//!    reports byte-identically to an uninterrupted run.

use pinning_crypto::SplitMix64;
use pinning_epoch::{all_fingerprints, EpochConfig, EpochOutcome, EpochPlan, Evolution};
use pinning_store::config::WorldConfig;
use pinning_store::world::World;
use std::collections::BTreeSet;

#[test]
fn fingerprint_invariant_under_set_field_permutation() {
    for seed in [0xF1u64, 0xF2, 0xF3] {
        let mut world = World::generate(WorldConfig::tiny(seed));
        let before = all_fingerprints(&world);
        let mut rng = SplitMix64::new(seed).derive("permute");
        for app in &mut world.apps {
            rng.shuffle(&mut app.sdk_names);
            rng.shuffle(&mut app.first_party_domains);
            rng.shuffle(&mut app.associated_domains);
        }
        assert_eq!(
            before,
            all_fingerprints(&world),
            "seed {seed:#x}: set-like field order leaked into the fingerprint"
        );
    }
}

#[test]
fn every_event_flips_exactly_the_touched_apps() {
    for seed in [0xE1u64, 0xE2] {
        let config = EpochConfig::tiny(seed);
        let plan = EpochPlan::generate(&config);
        let mut world = World::generate(config.world.clone());
        for (k, events) in plan.epochs.iter().enumerate() {
            let epoch = k + 1;
            let base = SplitMix64::new(config.seed).derive(&format!("apply/{epoch}"));
            for (i, ev) in events.iter().enumerate() {
                let before = all_fingerprints(&world);
                let predicted = ev.touched_apps(&world);
                let mut sub = base.derive(&format!("ev/{i}"));
                ev.apply(&mut world, &mut sub);
                let after = all_fingerprints(&world);
                let flipped: BTreeSet<usize> = (0..before.len())
                    .filter(|&a| before[a] != after[a])
                    .collect();
                assert_eq!(
                    predicted,
                    flipped,
                    "seed {seed:#x} epoch {epoch} event {i} ({}) mispredicted its dirty set",
                    ev.label()
                );
            }
        }
    }
}

#[test]
fn plan_generation_is_deterministic() {
    let config = EpochConfig::tiny(0xDE);
    assert_eq!(EpochPlan::generate(&config), EpochPlan::generate(&config));
}

#[test]
fn kill_and_resume_yields_byte_identical_reports() {
    let seed = 0x4B5;
    // Reference: uninterrupted incremental run.
    let mut reference = Evolution::new(EpochConfig::tiny(seed), true);
    for _ in 0..reference.epochs_total() {
        reference.next_epoch().unwrap();
    }

    // Victim: same run, killed mid-way through epoch 1, state persisted
    // after epoch 0 — then a "fresh process" rebuilds the engine from
    // that state and finishes the epoch from the partial journal.
    let mut victim = Evolution::new(EpochConfig::tiny(seed), true);
    victim.next_epoch().unwrap();
    let state = victim.state_bytes();
    let journal = match victim.next_epoch_with_kill(2).unwrap() {
        EpochOutcome::Interrupted(journal) => journal,
        EpochOutcome::Completed => panic!("kill hook must interrupt the epoch"),
    };
    drop(victim); // the process "dies" here

    let mut revived = Evolution::from_state(EpochConfig::tiny(seed), &state).unwrap();
    assert_eq!(revived.completed(), 1);
    revived.resume_epoch(&journal).unwrap();
    while revived.completed() < revived.epochs_total() {
        revived.next_epoch().unwrap();
    }
    assert_eq!(
        revived.full_report(),
        reference.full_report(),
        "kill-and-resume diverged from the uninterrupted run"
    );
    assert_eq!(revived.fingerprints(), reference.fingerprints());
}
