//! Seeded epoch plans: how a store evolves over N epochs.
//!
//! [`EpochPlan::generate`] evolves a *scratch* world internally while
//! planning, so epoch k's events are drawn from the state the store will
//! actually be in at epoch k-1 (an app that dropped pinning in epoch 2
//! is never asked to drop it again in epoch 4; a reissued certificate's
//! new expiry drives later reissue picks). App-level mutation targets
//! are sampled without replacement across the whole plan, so no app's
//! manifest is rewritten twice — each event's `touched_apps` stays an
//! exact dirtiness predictor.

use crate::event::EpochEvent;
use crate::fingerprint::relevant_destinations;
use pinning_app::sdk;
use pinning_crypto::{sha256, SplitMix64};
use pinning_store::config::WorldConfig;
use pinning_store::world::World;
use std::collections::BTreeSet;

/// Configuration of a longitudinal run: the baseline world plus the
/// evolution schedule.
#[derive(Debug, Clone)]
pub struct EpochConfig {
    /// Baseline world-generation knobs (epoch 0 measures this world).
    pub world: WorldConfig,
    /// Evolution epochs beyond the baseline.
    pub epochs: usize,
    /// Plan seed (independent of the world seed).
    pub seed: u64,
    /// Simulated days between consecutive epochs.
    pub days_per_epoch: u64,
    /// App-level mutation events targeted per epoch.
    pub app_events_per_epoch: usize,
    /// Worker threads for each epoch's study.
    pub threads: usize,
}

impl EpochConfig {
    /// Miniature longitudinal run for tests.
    pub fn tiny(seed: u64) -> Self {
        EpochConfig {
            world: WorldConfig::tiny(seed),
            epochs: 3,
            seed: seed ^ 0xE70C,
            days_per_epoch: 14,
            app_events_per_epoch: 4,
            threads: 2,
        }
    }

    /// Identity of everything that determines the evolved worlds and
    /// verdicts. Threads are excluded (scheduling never changes
    /// observables), so a state written by an 8-worker run resumes on 1.
    pub fn identity(&self) -> [u8; 32] {
        let repr = format!(
            "{:?}|{}|{}|{}|{}",
            self.world, self.epochs, self.seed, self.days_per_epoch, self.app_events_per_epoch
        );
        sha256(repr.as_bytes())
    }
}

/// The full evolution schedule: one event list per epoch (epoch k ≥ 1
/// uses `epochs[k-1]`; epoch 0 is the baseline and has no events).
#[derive(Debug, Clone, PartialEq)]
pub struct EpochPlan {
    /// Events per evolution epoch, in application order.
    pub epochs: Vec<Vec<EpochEvent>>,
}

/// Applies one epoch's events in order, deriving a fresh sub-rng per
/// event from `(seed, epoch, event index)` so an event's content
/// decisions never depend on how earlier events consumed randomness.
/// Returns each event's touched-app set, evaluated against the world
/// state at its application point.
pub fn apply_epoch(
    world: &mut World,
    events: &[EpochEvent],
    seed: u64,
    epoch: usize,
) -> Vec<BTreeSet<usize>> {
    let base = SplitMix64::new(seed).derive(&format!("apply/{epoch}"));
    events
        .iter()
        .enumerate()
        .map(|(i, ev)| {
            let touched = ev.touched_apps(world);
            let mut sub = base.derive(&format!("ev/{i}"));
            ev.apply(world, &mut sub);
            touched
        })
        .collect()
}

/// Hostnames served with a universe-issued (reissuable) chain, sorted by
/// leaf expiry so soon-expiring certificates rotate first.
fn reissue_candidates(world: &World) -> Vec<String> {
    let mut hosts: Vec<(u64, String)> = world
        .network
        .servers()
        .iter()
        .filter_map(|s| {
            let leaf = s.chain.leaf()?;
            world.universe.intermediate_index(&leaf.tbs.issuer)?;
            Some((leaf.tbs.validity.not_after.0, s.hostnames.first()?.clone()))
        })
        .collect();
    hosts.sort();
    hosts.into_iter().map(|(_, h)| h).collect()
}

impl EpochPlan {
    /// Generates the schedule for `config`, evolving a scratch world so
    /// every event is consistent with the store state it will meet.
    pub fn generate(config: &EpochConfig) -> Self {
        let mut scratch = World::generate(config.world.clone());
        let hostile: BTreeSet<usize> = scratch.hostile_apps.iter().copied().collect();
        let mut used_apps: BTreeSet<usize> = BTreeSet::new();
        let mut epochs = Vec::with_capacity(config.epochs);

        for k in 1..=config.epochs {
            let mut rng = SplitMix64::new(config.seed).derive(&format!("plan/{k}"));
            let mut events = vec![EpochEvent::TimeAdvance {
                days: config.days_per_epoch,
            }];

            // --- App-level version bumps, sampled without replacement. ---
            let mut pool: Vec<usize> = (0..scratch.apps.len())
                .filter(|i| !hostile.contains(i) && !used_apps.contains(i))
                .collect();
            rng.shuffle(&mut pool);
            let mut added = 0;
            for &i in &pool {
                if added >= config.app_events_per_epoch {
                    break;
                }
                if let Some(ev) = pick_app_event(&scratch, i, &mut rng) {
                    if !ev.touched_apps(&scratch).is_empty() {
                        events.push(ev);
                        used_apps.insert(i);
                        added += 1;
                    }
                }
            }

            // --- Certificate lifecycle: reissue soon-expiring leaves,
            // plus one reissue of a *pinned* host so the rotation-survival
            // metric has subjects. Key-rotating reissues are chased by a
            // PinRotation (backup-pin app updates) most of the time.
            let candidates = reissue_candidates(&scratch);
            let pinned_hosts: Vec<&String> = candidates
                .iter()
                .filter(|h| scratch.apps.iter().any(|a| a.pin_rule_for(h).is_some()))
                .collect();
            let mut reissued: Vec<String> = Vec::new();
            if let Some(h) = pinned_hosts.first() {
                reissued.push((*h).clone());
            }
            for h in &candidates {
                if reissued.len() >= 2 {
                    break;
                }
                if !reissued.contains(h) {
                    reissued.push(h.clone());
                }
            }
            for h in reissued {
                let rotate_key = rng.chance(0.6);
                events.push(EpochEvent::ServerReissue {
                    hostname: h.clone(),
                    rotate_key,
                });
                if rotate_key && rng.chance(0.7) {
                    events.push(EpochEvent::PinRotation { hostname: h });
                }
            }

            // --- Trust-store churn: occasional root distrust. ---
            if k >= 2 && rng.chance(0.35) {
                let mut roots: Vec<String> = scratch
                    .universe
                    .mozilla
                    .iter()
                    .map(|c| c.tbs.subject.common_name.clone())
                    .collect();
                roots.sort();
                if !roots.is_empty() {
                    let pick = rng.next_below(roots.len() as u64) as usize;
                    events.push(EpochEvent::RootDistrust {
                        root_cn: roots[pick].clone(),
                    });
                }
            }

            // --- CT log growth: one backfill per epoch. ---
            let servers = scratch.network.servers();
            if !servers.is_empty() {
                let pick = rng.next_below(servers.len() as u64) as usize;
                if let Some(h) = servers[pick].hostnames.first() {
                    events.push(EpochEvent::CtBackfill {
                        hostname: h.clone(),
                    });
                }
            }

            // Advance the scratch world so epoch k+1 plans against the
            // post-epoch-k store.
            apply_epoch(&mut scratch, &events, config.seed, k);
            epochs.push(events);
        }

        EpochPlan { epochs }
    }
}

/// Picks a version-bump event for one app, or `None` if no mutation
/// kind applies to it.
fn pick_app_event(world: &World, app_index: usize, rng: &mut SplitMix64) -> Option<EpochEvent> {
    let app = &world.apps[app_index];
    let mut options: Vec<EpochEvent> = Vec::new();

    // Adopt pinning on an existing, currently-unpinned destination.
    if let Some(domain) = relevant_destinations(app).into_iter().find(|d| {
        world.network.resolve(d).is_some()
            && app.behavior.connections.iter().any(|c| &c.domain == d)
            && app.pin_rule_for(d).is_none()
    }) {
        options.push(EpochEvent::PinningAdopted { app_index, domain });
    }
    if app.pin_rules.iter().any(|r| r.active_at_runtime) {
        options.push(EpochEvent::PinningDropped { app_index });
    }
    if app
        .pin_rules
        .iter()
        .any(|r| r.active_at_runtime && r.storage == pinning_app::pinning::PinStorage::NscPinSet)
    {
        options.push(EpochEvent::NscPinExpiry { app_index });
    }
    if let Some(old_sdk) = app.sdk_names.first().cloned() {
        // Swap to a non-pinning SDK not already bundled.
        let replacement = sdk::registry().iter().find(|s| {
            s.available_on(app.id.platform)
                && s.pinning_on(app.id.platform).is_none()
                && !app.sdk_names.iter().any(|n| n == s.name)
        });
        if let Some(new_spec) = replacement {
            options.push(EpochEvent::SdkSwap {
                app_index,
                old_sdk,
                new_sdk: new_spec.name.to_string(),
            });
        }
    }

    if options.is_empty() {
        return None;
    }
    let pick = rng.next_below(options.len() as u64) as usize;
    Some(options.swap_remove(pick))
}
