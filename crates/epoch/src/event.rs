//! The epoch event taxonomy: typed mutations that evolve a [`World`]
//! from one epoch to the next.
//!
//! Every event offers two views that MUST stay in lockstep (the
//! proptests compare them): [`EpochEvent::touched_apps`], a pure
//! pre-apply query for "whose fingerprint will this flip", and
//! [`EpochEvent::apply`], the actual mutation. An event that finds its
//! precondition gone (the app already dropped pinning, the hostname
//! does not resolve) is an honest no-op: it touches nobody and applies
//! nothing.
//!
//! Certificate mutations route through
//! [`Certificate::invalidate_derived`][pinning_pki::cert::Certificate::invalidate_derived]:
//! the same-key renewal path edits a cloned leaf in place (new serial,
//! fresh validity, re-signed by the same intermediate), exactly the
//! mutate-after-clone pattern the derived-value cache guard polices.

use crate::fingerprint::relevant_destinations;
use pinning_app::pinning::{DomainPinRule, PinSource, PinStorage, PinTarget};
use pinning_app::sdk;
use pinning_crypto::sig::KeyPair;
use pinning_crypto::SplitMix64;
use pinning_pki::chain::CertificateChain;
use pinning_pki::pin::{Pin, PinAlgorithm, PinSet, SpkiPin};
use pinning_pki::time::{Validity, DAY};
use pinning_pki::Certificate;
use pinning_store::world::World;
use std::collections::BTreeSet;

/// One typed mutation of the world between epochs.
#[derive(Debug, Clone, PartialEq)]
pub enum EpochEvent {
    /// The simulation clock advances; certificates may cross expiry.
    TimeAdvance {
        /// Days to advance.
        days: u64,
    },
    /// An app version bump adopts runtime pinning for one of its
    /// existing destinations (obfuscated storage: the package bytes are
    /// unchanged, mirroring §5.6's statically-invisible channel).
    PinningAdopted {
        /// Index into `World::apps`.
        app_index: usize,
        /// The destination the new rule covers.
        domain: String,
    },
    /// An app version bump drops pinning: every rule goes inert (the
    /// code ships but no longer executes — Table 3's dead-code case).
    PinningDropped {
        /// Index into `World::apps`.
        app_index: usize,
    },
    /// The app's NSC `<pin-set>` expiration date passes: NSC-declared
    /// pins stop being enforced while the config file still scans
    /// statically.
    NscPinExpiry {
        /// Index into `World::apps`.
        app_index: usize,
    },
    /// A version bump swaps one bundled SDK for another: the old SDK's
    /// pin rules go dead, its connections move to the new SDK's
    /// backend.
    SdkSwap {
        /// Index into `World::apps`.
        app_index: usize,
        /// SDK being removed (must be bundled).
        old_sdk: String,
        /// SDK taking its place.
        new_sdk: String,
    },
    /// A server's certificate is reissued — either a same-key renewal
    /// (new serial and validity, same SPKI: key-pinning apps survive)
    /// or a key-rotating reissue (fresh keypair: leaf-SPKI pins break).
    ServerReissue {
        /// The hostname whose served chain is replaced.
        hostname: String,
        /// Whether the reissue rotates the keypair.
        rotate_key: bool,
    },
    /// Apps pinning `hostname` ship an update tracking the served
    /// chain: the primary pin moves to the new certificate and the old
    /// pin stays as a backup pin.
    PinRotation {
        /// The pinned hostname.
        hostname: String,
    },
    /// A root CA is distrusted: removed from every root store
    /// (Mozilla, AOSP, AOSP+OEM, iOS).
    RootDistrust {
        /// Common name of the distrusted root.
        root_cn: String,
    },
    /// A CT log backfills a server's chain into every shard whose
    /// temporal window covers it (log growth; touches no app).
    CtBackfill {
        /// The hostname whose chain is backfilled.
        hostname: String,
    },
}

/// The chain served for `hostname`, if it resolves.
fn chain_for<'w>(world: &'w World, hostname: &str) -> Option<&'w CertificateChain> {
    world.network.resolve(hostname).map(|s| &s.chain)
}

/// The chain certificate a rule of the given target pins.
fn target_cert(chain: &CertificateChain, target: PinTarget) -> Option<&Certificate> {
    let certs = chain.certs();
    match target {
        PinTarget::Leaf => certs.first(),
        PinTarget::Intermediate => {
            if certs.len() >= 3 {
                certs.get(1)
            } else {
                certs.first()
            }
        }
        PinTarget::Root => certs.last(),
    }
}

/// Indices of apps holding an *active* rule that applies to `hostname`.
fn apps_pinning(world: &World, hostname: &str) -> BTreeSet<usize> {
    (0..world.apps.len())
        .filter(|&i| world.apps[i].pin_rule_for(hostname).is_some())
        .collect()
}

/// Indices of apps whose relevant destination set contains `hostname`.
fn apps_reaching(world: &World, hostname: &str) -> BTreeSet<usize> {
    (0..world.apps.len())
        .filter(|&i| relevant_destinations(&world.apps[i]).contains(hostname))
        .collect()
}

impl EpochEvent {
    /// Stable label for the event-mix table.
    pub fn label(&self) -> &'static str {
        match self {
            EpochEvent::TimeAdvance { .. } => "time-advance",
            EpochEvent::PinningAdopted { .. } => "pinning-adopted",
            EpochEvent::PinningDropped { .. } => "pinning-dropped",
            EpochEvent::NscPinExpiry { .. } => "nsc-pin-expiry",
            EpochEvent::SdkSwap { .. } => "sdk-swap",
            EpochEvent::ServerReissue { .. } => "server-reissue",
            EpochEvent::PinRotation { .. } => "pin-rotation",
            EpochEvent::RootDistrust { .. } => "root-distrust",
            EpochEvent::CtBackfill { .. } => "ct-backfill",
        }
    }

    /// The apps whose fingerprint this event will flip, evaluated
    /// against the world state *before* [`EpochEvent::apply`]. Honest
    /// no-op semantics: if the precondition no longer holds, the set is
    /// empty and `apply` changes nothing.
    pub fn touched_apps(&self, world: &World) -> BTreeSet<usize> {
        match self {
            EpochEvent::TimeAdvance { days } => {
                let then = world.now + days * DAY;
                (0..world.apps.len())
                    .filter(|&i| {
                        relevant_destinations(&world.apps[i]).iter().any(|d| {
                            chain_for(world, d).is_some_and(|chain| {
                                chain.certs().iter().any(|c| {
                                    c.tbs.validity.contains(world.now)
                                        != c.tbs.validity.contains(then)
                                })
                            })
                        })
                    })
                    .collect()
            }
            EpochEvent::PinningAdopted { app_index, domain } => {
                let app = &world.apps[*app_index];
                let applicable = chain_for(world, domain).is_some()
                    && app.behavior.connections.iter().any(|c| &c.domain == domain)
                    && app.pin_rule_for(domain).is_none();
                if applicable {
                    BTreeSet::from([*app_index])
                } else {
                    BTreeSet::new()
                }
            }
            EpochEvent::PinningDropped { app_index } => {
                let app = &world.apps[*app_index];
                if app.pin_rules.iter().any(|r| r.active_at_runtime) {
                    BTreeSet::from([*app_index])
                } else {
                    BTreeSet::new()
                }
            }
            EpochEvent::NscPinExpiry { app_index } => {
                let app = &world.apps[*app_index];
                let has_live_nsc = app
                    .pin_rules
                    .iter()
                    .any(|r| r.active_at_runtime && r.storage == PinStorage::NscPinSet);
                if has_live_nsc {
                    BTreeSet::from([*app_index])
                } else {
                    BTreeSet::new()
                }
            }
            EpochEvent::SdkSwap {
                app_index,
                old_sdk,
                new_sdk,
            } => {
                let app = &world.apps[*app_index];
                let applicable = app.sdk_names.iter().any(|s| s == old_sdk)
                    && !app.sdk_names.iter().any(|s| s == new_sdk)
                    && sdk::by_name(old_sdk).is_some()
                    && sdk::by_name(new_sdk).is_some_and(|s| s.available_on(app.id.platform));
                if applicable {
                    BTreeSet::from([*app_index])
                } else {
                    BTreeSet::new()
                }
            }
            EpochEvent::ServerReissue { hostname, .. } => {
                let reissuable = chain_for(world, hostname).is_some_and(|chain| {
                    chain
                        .leaf()
                        .is_some_and(|l| world.universe.intermediate_index(&l.tbs.issuer).is_some())
                });
                if reissuable {
                    apps_reaching(world, hostname)
                } else {
                    BTreeSet::new()
                }
            }
            EpochEvent::PinRotation { hostname } => {
                if chain_for(world, hostname).is_some() {
                    apps_pinning(world, hostname)
                } else {
                    BTreeSet::new()
                }
            }
            EpochEvent::RootDistrust { root_cn } => {
                let Some(root) = world
                    .universe
                    .mozilla
                    .iter()
                    .find(|c| c.tbs.subject.common_name == *root_cn)
                    .cloned()
                else {
                    return BTreeSet::new();
                };
                (0..world.apps.len())
                    .filter(|&i| {
                        let app = &world.apps[i];
                        let store = match app.id.platform {
                            pinning_app::platform::Platform::Android => &world.universe.aosp_oem,
                            pinning_app::platform::Platform::Ios => &world.universe.ios,
                        };
                        relevant_destinations(app).iter().any(|d| {
                            chain_for(world, d).is_some_and(|chain| {
                                chain.certs().last().is_some_and(|top| {
                                    top.tbs.subject == root.tbs.subject && store.contains(top)
                                })
                            })
                        })
                    })
                    .collect()
            }
            EpochEvent::CtBackfill { .. } => BTreeSet::new(),
        }
    }

    /// Applies the event to the world. `rng` feeds only content
    /// decisions (keys, serials, lifetimes, pin targets) — never
    /// applicability, which must match [`EpochEvent::touched_apps`].
    pub fn apply(&self, world: &mut World, rng: &mut SplitMix64) {
        match self {
            EpochEvent::TimeAdvance { days } => {
                world.now = world.now + days * DAY;
                world.universe.set_now(world.now);
            }
            EpochEvent::PinningAdopted { app_index, domain } => {
                if self.touched_apps(world).is_empty() {
                    return;
                }
                let target = if rng.chance(0.7) {
                    PinTarget::Root
                } else {
                    PinTarget::Leaf
                };
                let cert = target_cert(chain_for(world, domain).expect("checked"), target)
                    .expect("served chains are non-empty")
                    .clone();
                let app = &mut world.apps[*app_index];
                app.pin_rules.push(DomainPinRule::spki(
                    domain.clone(),
                    &cert,
                    target,
                    PinAlgorithm::Sha256,
                    PinStorage::ObfuscatedCode,
                    PinSource::FirstParty,
                ));
                let idx = app.pin_rules.len() - 1;
                for conn in &mut app.behavior.connections {
                    if &conn.domain == domain {
                        conn.pin_rule = Some(idx);
                    }
                }
            }
            EpochEvent::PinningDropped { app_index } => {
                for rule in &mut world.apps[*app_index].pin_rules {
                    rule.active_at_runtime = false;
                }
            }
            EpochEvent::NscPinExpiry { app_index } => {
                for rule in &mut world.apps[*app_index].pin_rules {
                    if rule.storage == PinStorage::NscPinSet {
                        rule.active_at_runtime = false;
                    }
                }
            }
            EpochEvent::SdkSwap {
                app_index,
                old_sdk,
                new_sdk,
            } => {
                if self.touched_apps(world).is_empty() {
                    return;
                }
                let platform = world.apps[*app_index].id.platform;
                let old_spec = sdk::by_name(old_sdk).expect("checked");
                let new_spec = sdk::by_name(new_sdk).expect("checked");
                let app = &mut world.apps[*app_index];
                app.sdk_names.retain(|s| s != old_sdk);
                app.sdk_names.push(new_sdk.clone());
                for rule in &mut app.pin_rules {
                    if rule.source == PinSource::Sdk(old_sdk.clone()) {
                        rule.active_at_runtime = false;
                    }
                }
                for conn in &mut app.behavior.connections {
                    if old_spec.domains.contains(&conn.domain.as_str()) {
                        let pick = rng.next_below(new_spec.domains.len() as u64) as usize;
                        conn.domain = new_spec.domains[pick].to_string();
                        conn.library = new_spec.tls_on(platform);
                        conn.pin_rule = None;
                    }
                }
            }
            EpochEvent::ServerReissue {
                hostname,
                rotate_key,
            } => {
                if self.touched_apps(world).is_empty() {
                    return;
                }
                let (hostnames, organization, old_chain) = {
                    let s = world.network.resolve(hostname).expect("checked");
                    (s.hostnames.clone(), s.organization.clone(), s.chain.clone())
                };
                let leaf = old_chain.leaf().expect("non-empty chain");
                let inter_idx = world
                    .universe
                    .intermediate_index(&leaf.tbs.issuer)
                    .expect("checked");
                let lifetime_days = 90 + rng.next_below(300);
                let mut new_chain = if *rotate_key {
                    let key = KeyPair::generate(rng);
                    world.universe.issue_server_chain_via(
                        inter_idx,
                        &hostnames,
                        &organization,
                        &key,
                        lifetime_days,
                    )
                } else {
                    // Same-key renewal: clone the leaf, refresh serial and
                    // validity in place, re-sign with the same issuer key.
                    let mut renewed = leaf.clone();
                    renewed.tbs.serial = rng.next_u64();
                    renewed.tbs.validity =
                        Validity::starting(world.now - 30 * DAY, lifetime_days * DAY);
                    renewed.invalidate_derived(); // clones share the derived cache
                    renewed.signature = world
                        .universe
                        .intermediate(inter_idx)
                        .expect("index from intermediate_index")
                        .keypair()
                        .sign(&renewed.tbs.to_bytes());
                    let mut certs = vec![renewed];
                    certs.extend(old_chain.certs()[1..].iter().cloned());
                    CertificateChain::new(certs)
                };
                world.interner.intern_chain_cas(&mut new_chain);
                for cert in new_chain.certs() {
                    world.ctlog.submit(cert);
                }
                world.network.resolve_mut(hostname).expect("checked").chain = new_chain;
            }
            EpochEvent::PinRotation { hostname } => {
                let pinning = self.touched_apps(world);
                if pinning.is_empty() {
                    return;
                }
                let chain = chain_for(world, hostname).expect("checked").clone();
                for i in pinning {
                    let app = &mut world.apps[i];
                    for rule in &mut app.pin_rules {
                        if !(rule.active_at_runtime && rule.applies_to(hostname)) {
                            continue;
                        }
                        let Some(new_cert) = target_cert(&chain, rule.target).cloned() else {
                            continue;
                        };
                        let old_cert = rule.pinned_certs.first().cloned();
                        let mut pins = vec![Pin::Spki(SpkiPin::sha256_of(&new_cert))];
                        let mut certs = vec![new_cert];
                        if let Some(old) = old_cert {
                            pins.push(Pin::Spki(SpkiPin::sha256_of(&old))); // backup pin
                            certs.push(old);
                        }
                        rule.pins = PinSet::from_pins(pins);
                        rule.pinned_certs = certs;
                    }
                }
            }
            EpochEvent::RootDistrust { root_cn } => {
                let Some(subject) = world
                    .universe
                    .mozilla
                    .iter()
                    .find(|c| c.tbs.subject.common_name == *root_cn)
                    .map(|c| c.tbs.subject.clone())
                else {
                    return;
                };
                world.universe.mozilla.remove(&subject);
                world.universe.aosp.remove(&subject);
                world.universe.aosp_oem.remove(&subject);
                world.universe.ios.remove(&subject);
            }
            EpochEvent::CtBackfill { hostname } => {
                let Some(chain) = chain_for(world, hostname).cloned() else {
                    return;
                };
                for cert in chain.certs() {
                    world.ctlog.backfill(cert);
                }
            }
        }
    }
}
