//! Persistable study state: everything the incremental engine needs to
//! pick a longitudinal run back up in a fresh process.
//!
//! The heavy state (worlds) is *not* serialized — it is rebuilt
//! deterministically from the plan. What persists is the small dynamic
//! core: the per-app fingerprint table, the last completed epoch's
//! journal (canonical, app-index order), the rendered report of that
//! epoch, and the accumulated delta-report rows.

use pinning_crypto::sha256;
use pinning_pki::encode::{Reader, Writer};
use pinning_pki::error::DecodeError;
use pinning_report::evolution::{
    AdoptionPoint, CtDriftPoint, DistrustRow, EpochCostRow, EventCountRow, RotationRow,
};

const MAGIC: &[u8; 8] = b"PINEPOC1";
const VERSION: u64 = 1;

/// Why a state image could not be loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The TLV structure failed to decode.
    Decode(DecodeError),
    /// The magic or version does not match.
    BadHeader,
    /// The state belongs to a different [`EpochConfig`][crate::plan::EpochConfig]
    /// (by [`identity`][crate::plan::EpochConfig::identity]).
    IdentityMismatch,
    /// No checkpoint slot held a loadable state image (both slots empty
    /// or damaged beyond the double-buffer's tolerance).
    NoCheckpoint,
}

impl From<DecodeError> for StateError {
    fn from(e: DecodeError) -> Self {
        StateError::Decode(e)
    }
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::Decode(e) => write!(f, "state decode error: {e:?}"),
            StateError::BadHeader => write!(f, "not an epoch-state image"),
            StateError::IdentityMismatch => {
                write!(f, "state belongs to a different epoch configuration")
            }
            StateError::NoCheckpoint => {
                write!(f, "no checkpoint slot holds a loadable state image")
            }
        }
    }
}

impl std::error::Error for StateError {}

/// The serializable core of an [`Evolution`][crate::study::Evolution].
#[derive(Debug, Clone, PartialEq)]
pub struct EpochState {
    /// [`EpochConfig::identity`][crate::plan::EpochConfig::identity] of
    /// the owning configuration.
    pub identity: [u8; 32],
    /// Epochs completed (baseline counts as 1).
    pub done: u64,
    /// Whether the run used incremental replay.
    pub incremental: bool,
    /// Per-app content fingerprints at the last completed epoch.
    pub fingerprints: Vec<[u8; 32]>,
    /// Canonical journal of the last completed epoch (entries in
    /// app-index order; replaying it against the rebuilt world yields
    /// the epoch's records byte-for-byte).
    pub journal: Vec<u8>,
    /// The last completed epoch's rendered report.
    pub last_render: String,
    /// Accumulated adoption-trend points.
    pub adoption: Vec<AdoptionPoint>,
    /// Accumulated distrust-breakage rows.
    pub distrust: Vec<DistrustRow>,
    /// Accumulated rotation-survival rows.
    pub rotation: Vec<RotationRow>,
    /// Accumulated CT-drift points.
    pub ct_drift: Vec<CtDriftPoint>,
    /// Accumulated event-mix rows.
    pub event_mix: Vec<EventCountRow>,
    /// Accumulated incremental-cost rows (telemetry; not part of the
    /// byte-compared artifact).
    pub costs: Vec<EpochCostRow>,
}

impl EpochState {
    /// Serializes the state with a checksummed trailer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(MAGIC);
        w.u64(VERSION);
        w.bytes(&self.identity);
        w.u64(self.done);
        w.boolean(self.incremental);
        w.list(&self.fingerprints, |w, fp| w.bytes(fp));
        w.bytes(&self.journal);
        w.string(&self.last_render);
        w.list(&self.adoption, |w, p| {
            w.u64(p.epoch as u64);
            w.string(&p.dataset);
            w.u64(p.apps as u64);
            w.u64(p.pinning as u64);
        });
        w.list(&self.distrust, |w, r| {
            w.u64(r.epoch as u64);
            w.string(&r.root);
            w.u64(r.apps_touched as u64);
            w.u64(r.newly_broken as u64);
        });
        w.list(&self.rotation, |w, r| {
            w.u64(r.epoch as u64);
            w.string(&r.hostname);
            w.u64(r.pinned_before as u64);
            w.u64(r.surviving as u64);
        });
        w.list(&self.ct_drift, |w, p| {
            w.u64(p.epoch as u64);
            w.u64(p.covered_hosts as u64);
            w.u64(p.total_hosts as u64);
            w.u64(p.unique_certs as u64);
        });
        w.list(&self.event_mix, |w, r| {
            w.u64(r.epoch as u64);
            w.string(&r.label);
            w.u64(r.count as u64);
        });
        w.list(&self.costs, |w, r| {
            w.u64(r.epoch as u64);
            w.u64(r.replayed as u64);
            w.u64(r.reanalyzed as u64);
            w.u64(r.wall_ms);
        });
        let body = w.into_bytes();
        let sum = sha256(&body);
        let mut out = body;
        out.extend_from_slice(&sum);
        out
    }

    /// Parses a state image, verifying the checksum and header.
    pub fn from_bytes(bytes: &[u8]) -> Result<EpochState, StateError> {
        if bytes.len() < 32 {
            return Err(StateError::BadHeader);
        }
        let (body, sum) = bytes.split_at(bytes.len() - 32);
        if sha256(body) != *<&[u8; 32]>::try_from(sum).expect("32 bytes") {
            return Err(StateError::BadHeader);
        }
        let mut r = Reader::new(body);
        if r.bytes()? != MAGIC || r.u64()? != VERSION {
            return Err(StateError::BadHeader);
        }
        let identity = {
            let b = r.bytes()?;
            <[u8; 32]>::try_from(b.as_slice()).map_err(|_| StateError::BadHeader)?
        };
        let done = r.u64()?;
        let incremental = r.boolean()?;
        let fingerprints = r.list(|r| {
            let b = r.bytes()?;
            <[u8; 32]>::try_from(b.as_slice()).map_err(|_| DecodeError::BadFieldSize)
        })?;
        let journal = r.bytes()?;
        let last_render = r.string()?;
        let adoption = r.list(|r| {
            Ok(AdoptionPoint {
                epoch: r.u64()? as usize,
                dataset: r.string()?,
                apps: r.u64()? as usize,
                pinning: r.u64()? as usize,
            })
        })?;
        let distrust = r.list(|r| {
            Ok(DistrustRow {
                epoch: r.u64()? as usize,
                root: r.string()?,
                apps_touched: r.u64()? as usize,
                newly_broken: r.u64()? as usize,
            })
        })?;
        let rotation = r.list(|r| {
            Ok(RotationRow {
                epoch: r.u64()? as usize,
                hostname: r.string()?,
                pinned_before: r.u64()? as usize,
                surviving: r.u64()? as usize,
            })
        })?;
        let ct_drift = r.list(|r| {
            Ok(CtDriftPoint {
                epoch: r.u64()? as usize,
                covered_hosts: r.u64()? as usize,
                total_hosts: r.u64()? as usize,
                unique_certs: r.u64()? as usize,
            })
        })?;
        let event_mix = r.list(|r| {
            Ok(EventCountRow {
                epoch: r.u64()? as usize,
                label: r.string()?,
                count: r.u64()? as usize,
            })
        })?;
        let costs = r.list(|r| {
            Ok(EpochCostRow {
                epoch: r.u64()? as usize,
                replayed: r.u64()? as usize,
                reanalyzed: r.u64()? as usize,
                wall_ms: r.u64()?,
            })
        })?;
        Ok(EpochState {
            identity,
            done,
            incremental,
            fingerprints,
            journal,
            last_render,
            adoption,
            distrust,
            rotation,
            ct_drift,
            event_mix,
            costs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EpochState {
        EpochState {
            identity: [7; 32],
            done: 2,
            incremental: true,
            fingerprints: vec![[1; 32], [2; 32]],
            journal: vec![9, 9, 9],
            last_render: "report".into(),
            adoption: vec![AdoptionPoint {
                epoch: 1,
                dataset: "android/popular".into(),
                apps: 20,
                pinning: 5,
            }],
            distrust: vec![],
            rotation: vec![RotationRow {
                epoch: 1,
                hostname: "api.x.com".into(),
                pinned_before: 3,
                surviving: 2,
            }],
            ct_drift: vec![],
            event_mix: vec![EventCountRow {
                epoch: 1,
                label: "time-advance".into(),
                count: 1,
            }],
            costs: vec![EpochCostRow {
                epoch: 1,
                replayed: 40,
                reanalyzed: 10,
                wall_ms: 77,
            }],
        }
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        assert_eq!(EpochState::from_bytes(&s.to_bytes()).unwrap(), s);
    }

    #[test]
    fn corruption_is_rejected() {
        let mut bytes = sample().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert_eq!(
            EpochState::from_bytes(&bytes),
            Err(StateError::BadHeader),
            "checksum must catch a flipped bit"
        );
        assert!(EpochState::from_bytes(&bytes[..10]).is_err());
    }
}
