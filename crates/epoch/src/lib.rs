//! Longitudinal store evolution: a seeded epoch simulator plus a
//! fingerprint-driven incremental re-study engine.
//!
//! The paper measured both app stores at one instant. This crate asks
//! what happens *next*: a seeded [`EpochPlan`] evolves the generated
//! [`World`][pinning_store::world::World] through N epochs of typed
//! [`EpochEvent`]s — app version bumps that adopt or drop pinning, NSC
//! pin-set expiry, SDK swaps, certificate expiry and reissue, pin
//! rotation with backup pins, CT log growth, root-store distrust — and
//! the [`Evolution`] engine re-runs the full measurement study at each
//! epoch.
//!
//! The expensive part is made cheap the way cargo makes rebuilds cheap:
//! every app carries a content [`fingerprint`] digesting
//! everything that can change its verdict, and epoch N+1 re-measures an
//! app only when its fingerprint differs from epoch N's. Clean apps
//! replay their journaled verdict. The engine's invariant — gated by
//! `benches/epoch.rs` and this crate's proptests — is that the
//! incremental run renders **byte-identically** to a cold full re-run
//! while re-measuring only the dirty apps.
//!
//! ```
//! use pinning_epoch::{EpochConfig, Evolution};
//!
//! let mut study = Evolution::new(EpochConfig::tiny(7), true);
//! study.next_epoch().unwrap(); // baseline: everything measured
//! study.next_epoch().unwrap(); // epoch 1: only dirty apps re-measured
//! assert!(study.full_report().contains("Store evolution"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod fingerprint;
pub mod plan;
pub mod state;
pub mod study;

pub use event::EpochEvent;
pub use fingerprint::{
    all_fingerprints, app_fingerprint, app_fingerprint_in, relevant_destinations,
};
pub use plan::{apply_epoch, EpochConfig, EpochPlan};
pub use state::{EpochState, StateError};
pub use study::{EpochOutcome, Evolution};
