//! The incremental re-study engine: runs one journaled study per epoch,
//! replaying clean apps' verdicts from the previous epoch and
//! re-measuring only the apps whose content fingerprint changed.
//!
//! The engine's invariant (gated by `benches/epoch.rs` and the
//! proptests): an incremental epoch run renders **byte-identically** to
//! a cold full re-run of the same epoch, while re-measuring only the
//! dirty apps. That holds because replayed verdicts come from the same
//! journal format fresh measurements commit to, and materialization
//! replays the journal either way.

use crate::plan::{apply_epoch, EpochConfig, EpochPlan};
use crate::state::{EpochState, StateError};
use pinning_analysis::dynamics::pipeline::RetryPolicy;
use pinning_analysis::statics::analyze_package_cached;
use pinning_app::platform::Platform;
use pinning_core::journal::{AppOutcome, JournalEntry, JournalError, ResultJournal};
use pinning_core::record::AppRecord;
use pinning_core::study::{Study, StudyConfig, StudyOutcome, StudyResults, SupervisorConfig};
use pinning_crypto::Sha256;
use pinning_netsim::faults::FaultConfig;
use pinning_report::evolution::{
    self, AdoptionPoint, CtDriftPoint, DistrustRow, EpochCostRow, EventCountRow, RotationRow,
};
use pinning_report::tables::{table_run_health, RunHealthReport};
use pinning_resilience::media::{Media, MediaError};
use pinning_resilience::recovery::{CheckpointStore, ScrubStats};
use pinning_store::datasets::build_datasets;
use pinning_store::world::World;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// How one epoch run ended.
#[derive(Debug)]
pub enum EpochOutcome {
    /// The epoch committed fully; [`Evolution::completed`] advanced.
    Completed,
    /// The run was killed mid-epoch (via the kill hook); the journal
    /// bytes feed [`Evolution::resume_epoch`] — or
    /// [`Evolution::state_bytes`] plus the journal survive a process
    /// death.
    Interrupted(Vec<u8>),
}

/// A longitudinal study: the baseline epoch plus `config.epochs`
/// evolution epochs, driven one [`Evolution::next_epoch`] at a time.
#[derive(Debug)]
pub struct Evolution {
    config: EpochConfig,
    plan: EpochPlan,
    incremental: bool,
    /// The evolved world, if this process still holds it. `None` after
    /// an interruption (the study consumed it); rebuilt on demand.
    world: Option<World>,
    /// How many epochs' events `world` has absorbed (0 = baseline).
    evolved_for: Option<usize>,
    /// Completed epochs (baseline counts as 1).
    done: usize,
    /// Per-app fingerprints at the last completed epoch.
    fingerprints: Vec<[u8; 32]>,
    /// Records of the last completed epoch.
    records: BTreeMap<usize, AppRecord>,
    /// `render_all()` of the last completed epoch.
    last_render: String,
    adoption: Vec<AdoptionPoint>,
    distrust: Vec<DistrustRow>,
    rotation: Vec<RotationRow>,
    ct_drift: Vec<CtDriftPoint>,
    event_mix: Vec<EventCountRow>,
    costs: Vec<EpochCostRow>,
    /// Journal-scrub and checkpoint-fallback accounting accumulated over
    /// this engine's lifetime (resumes, checkpoint recoveries).
    recovery: ScrubStats,
}

impl Evolution {
    /// Creates the engine. `incremental = false` is the cold baseline
    /// mode: every epoch re-measures every app (the control arm the
    /// byte-identity gate compares against).
    pub fn new(config: EpochConfig, incremental: bool) -> Self {
        let plan = EpochPlan::generate(&config);
        Evolution {
            config,
            plan,
            incremental,
            world: None,
            evolved_for: None,
            done: 0,
            fingerprints: Vec::new(),
            records: BTreeMap::new(),
            last_render: String::new(),
            adoption: Vec::new(),
            distrust: Vec::new(),
            rotation: Vec::new(),
            ct_drift: Vec::new(),
            event_mix: Vec::new(),
            costs: Vec::new(),
            recovery: ScrubStats::default(),
        }
    }

    /// Total epochs (baseline + evolution).
    pub fn epochs_total(&self) -> usize {
        self.config.epochs + 1
    }

    /// Epochs completed so far.
    pub fn completed(&self) -> usize {
        self.done
    }

    /// The generated plan (for inspection/tests).
    pub fn plan(&self) -> &EpochPlan {
        &self.plan
    }

    /// Per-app fingerprints at the last completed epoch.
    pub fn fingerprints(&self) -> &[[u8; 32]] {
        &self.fingerprints
    }

    /// The study configuration an epoch runs under: same world knobs
    /// every epoch, no faults, no breaker — epoch deltas must come from
    /// epoch events, never from injected chaos.
    fn study_config(&self, kill_after: Option<usize>) -> StudyConfig {
        StudyConfig {
            world: self.config.world.clone(),
            threads: self.config.threads,
            faults: FaultConfig::none(),
            retry: RetryPolicy::default(),
            breaker: None,
            supervisor: SupervisorConfig {
                watchdog_secs: 300,
                kill_after_apps: kill_after,
                inject_panic_app: None,
            },
        }
    }

    /// Journal fingerprint of epoch `k`: the study fingerprint extended
    /// with the plan identity and the epoch number, so an epoch-2
    /// journal can never resume epoch 3.
    fn epoch_fp(&self, k: usize) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&self.study_config(None).fingerprint());
        h.update(&self.config.identity());
        h.update(&(k as u64).to_le_bytes());
        h.finalize()
    }

    /// Ensures `self.world` holds the world evolved through epoch `k`'s
    /// events, returning the per-event touched sets of epoch `k` (empty
    /// for the baseline). Rebuilding from scratch is deterministic:
    /// every event's sub-rng derives from `(seed, epoch, index)`.
    fn evolve_to(&mut self, k: usize) -> Vec<BTreeSet<usize>> {
        let mut from = match self.evolved_for {
            Some(n) if n <= k && self.world.is_some() => n,
            _ => {
                self.world = Some(World::generate(self.config.world.clone()));
                0
            }
        };
        let world = self.world.as_mut().expect("just ensured");
        let mut touched = Vec::new();
        while from < k {
            let epoch = from + 1;
            touched = apply_epoch(world, &self.plan.epochs[epoch - 1], self.config.seed, epoch);
            from = epoch;
        }
        self.evolved_for = Some(k);
        if k == 0 {
            Vec::new()
        } else {
            touched
        }
    }

    /// Runs epoch `completed()` to completion.
    pub fn next_epoch(&mut self) -> Result<(), JournalError> {
        match self.run_epoch(None, None)? {
            EpochOutcome::Completed => Ok(()),
            EpochOutcome::Interrupted(_) => unreachable!("no kill hook set"),
        }
    }

    /// Runs epoch `completed()` with the kill hook armed: the study
    /// stops after `kill_after` freshly measured apps, simulating the
    /// process dying mid-epoch.
    pub fn next_epoch_with_kill(
        &mut self,
        kill_after: usize,
    ) -> Result<EpochOutcome, JournalError> {
        self.run_epoch(Some(kill_after), None)
    }

    /// Resumes the current epoch from an interrupted journal image.
    pub fn resume_epoch(&mut self, journal_bytes: &[u8]) -> Result<(), JournalError> {
        match self.run_epoch(None, Some(journal_bytes))? {
            EpochOutcome::Completed => Ok(()),
            EpochOutcome::Interrupted(_) => unreachable!("no kill hook set"),
        }
    }

    fn run_epoch(
        &mut self,
        kill_after: Option<usize>,
        partial: Option<&[u8]>,
    ) -> Result<EpochOutcome, JournalError> {
        let k = self.done;
        assert!(k < self.epochs_total(), "all epochs already completed");
        let started = Instant::now();

        let touched = self.evolve_to(k);
        let world = self.world.take().expect("evolve_to populates the world");
        let fingerprint = self.epoch_fp(k);

        // The measured population: every dataset member plus the hostile
        // cohort (listings are event-invariant, so this matches what the
        // study itself will enumerate).
        let datasets = build_datasets(&world);
        let measured: BTreeSet<usize> = datasets
            .iter()
            .flat_map(|d| d.app_indices.iter().copied())
            .chain(world.hostile_apps.iter().copied())
            .collect();

        // Only measured apps need fingerprints; unlisted store apps can
        // never be dirty or clean — they are simply never measured.
        let mut new_fps = vec![[0u8; 32]; world.apps.len()];
        for &i in &measured {
            new_fps[i] = crate::fingerprint::app_fingerprint(&world, i);
        }

        // Dirty = fingerprint changed (or no prior verdict). The
        // baseline and the cold mode re-measure everything.
        let dirty: BTreeSet<usize> = if k == 0 || !self.incremental {
            measured.clone()
        } else {
            measured
                .iter()
                .copied()
                .filter(|&i| {
                    self.fingerprints.get(i) != Some(&new_fps[i]) || !self.records.contains_key(&i)
                })
                .collect()
        };
        let replayed = measured.len() - dirty.len();

        // Pre-seed the journal with the clean apps' prior-epoch verdicts
        // (app-index order). A resumed epoch brings its own journal,
        // which already holds these plus whatever fresh apps committed.
        let study = Study::new(self.study_config(kill_after));
        let outcome = match partial {
            Some(bytes) => study.resume_on_world(world, bytes, fingerprint)?,
            None => {
                let mut journal = ResultJournal::create(fingerprint);
                for &i in &measured {
                    if dirty.contains(&i) {
                        continue;
                    }
                    journal.append(&JournalEntry {
                        app_index: i as u64,
                        outcome: outcome_of(&self.records[&i]),
                    });
                }
                study.run_on_world(world, journal, fingerprint)?
            }
        };

        let mut results = match outcome {
            StudyOutcome::Completed(results) => *results,
            StudyOutcome::Interrupted { journal, .. } => {
                // The study consumed the world; a resume rebuilds it
                // deterministically from the plan.
                self.evolved_for = None;
                return Ok(EpochOutcome::Interrupted(journal.into_bytes()));
            }
        };
        if self.incremental && k > 0 {
            results.health.replayed_prior_epoch = replayed;
            results.health.reanalyzed_dirty = dirty.len();
        }
        // Keep the journal-scrub accounting past the epoch: the study's
        // RunHealth dies with its results, the evolution's does not.
        self.recovery.quarantined_bytes += results.health.quarantined_bytes;
        self.recovery.quarantined_records += results.health.quarantined_records;
        self.recovery.repairs += results.health.journal_repairs;
        self.recovery.checkpoints_recovered += results.health.checkpoints_recovered;

        self.collect_rows(k, &results, &touched);
        self.costs.push(EpochCostRow {
            epoch: k,
            replayed: if self.incremental && k > 0 {
                replayed
            } else {
                0
            },
            reanalyzed: dirty.len(),
            wall_ms: started.elapsed().as_millis() as u64,
        });
        self.last_render = results.render_all();
        let StudyResults { world, records, .. } = results;
        self.world = Some(world);
        self.evolved_for = Some(k);
        self.records = records;
        self.fingerprints = new_fps;
        self.done = k + 1;
        Ok(EpochOutcome::Completed)
    }

    /// Derives the delta-report rows for a completed epoch `k`.
    fn collect_rows(&mut self, k: usize, results: &StudyResults, touched: &[BTreeSet<usize>]) {
        for d in &results.datasets {
            let pinning = d
                .app_indices
                .iter()
                .filter(|i| results.records[i].pins())
                .count();
            self.adoption.push(AdoptionPoint {
                epoch: k,
                dataset: format!("{}/{}", d.platform, d.kind.label()),
                apps: d.app_indices.len(),
                pinning,
            });
        }

        let events: &[crate::event::EpochEvent] = if k == 0 {
            &[]
        } else {
            &self.plan.epochs[k - 1]
        };
        for (ev, touch) in events.iter().zip(touched) {
            match ev {
                crate::event::EpochEvent::RootDistrust { root_cn } => {
                    let newly_broken = touch
                        .iter()
                        .filter(|i| {
                            let (Some(prior), Some(now)) =
                                (self.records.get(i), results.records.get(i))
                            else {
                                return false;
                            };
                            prior
                                .used_destinations
                                .iter()
                                .any(|d| !now.used_destinations.contains(d))
                        })
                        .count();
                    self.distrust.push(DistrustRow {
                        epoch: k,
                        root: root_cn.clone(),
                        apps_touched: touch.len(),
                        newly_broken,
                    });
                }
                crate::event::EpochEvent::PinRotation { hostname } => {
                    let surviving = touch
                        .iter()
                        .filter(|i| {
                            results.records.get(i).is_some_and(|r| {
                                r.pinned_destinations.iter().any(|d| d == hostname)
                            })
                        })
                        .count();
                    self.rotation.push(RotationRow {
                        epoch: k,
                        hostname: hostname.clone(),
                        pinned_before: touch.len(),
                        surviving,
                    });
                }
                _ => {}
            }
        }

        let servers = results.world.network.servers();
        let covered = servers
            .iter()
            .filter(|s| {
                s.chain.leaf().is_some_and(|leaf| {
                    results
                        .world
                        .ctlog
                        .search_by_fingerprint(&leaf.fingerprint_sha256())
                        .is_some()
                })
            })
            .count();
        self.ct_drift.push(CtDriftPoint {
            epoch: k,
            covered_hosts: covered,
            total_hosts: servers.len(),
            unique_certs: results.world.ctlog.n_unique_certs(),
        });

        let mut mix: BTreeMap<&'static str, usize> = BTreeMap::new();
        for ev in events {
            *mix.entry(ev.label()).or_insert(0) += 1;
        }
        for (label, count) in mix {
            self.event_mix.push(EventCountRow {
                epoch: k,
                label: label.to_string(),
                count,
            });
        }
    }

    /// The "store evolution" delta report: every accumulated trend table
    /// except the cost accounting (which is wall-clock telemetry and
    /// therefore excluded from byte comparison).
    pub fn delta_report(&self) -> String {
        let mut out = String::new();
        out.push_str(&evolution::table_adoption_trend(&self.adoption));
        out.push('\n');
        out.push_str(&evolution::table_distrust_breakage(&self.distrust));
        out.push('\n');
        out.push_str(&evolution::table_rotation_survival(&self.rotation));
        out.push('\n');
        out.push_str(&evolution::table_ct_drift(&self.ct_drift));
        out.push('\n');
        out.push_str(&evolution::table_epoch_events(&self.event_mix));
        out
    }

    /// The byte-compared artifact: the last epoch's full study report
    /// plus the accumulated delta report.
    pub fn full_report(&self) -> String {
        let mut out = self.last_render.clone();
        out.push('\n');
        out.push_str(&self.delta_report());
        out
    }

    /// Incremental-cost accounting (replayed vs reanalyzed, wall time).
    pub fn cost_report(&self) -> String {
        evolution::table_epoch_costs(&self.costs)
    }

    /// Raw per-epoch cost rows (the bench reads wall times from here).
    pub fn costs(&self) -> &[EpochCostRow] {
        &self.costs
    }

    /// Sum of apps replayed from a prior epoch across all epochs so far.
    pub fn total_replayed(&self) -> usize {
        self.costs.iter().map(|c| c.replayed).sum()
    }

    /// Serializes everything a fresh process needs to continue this run
    /// after the last completed epoch. The journal inside is rebuilt
    /// canonically (app-index order) from the records, so two processes
    /// that completed the same epochs persist identical state.
    pub fn state_bytes(&self) -> Vec<u8> {
        assert!(self.done > 0, "no completed epoch to persist");
        let mut journal = ResultJournal::create(self.epoch_fp(self.done - 1));
        for (&i, rec) in &self.records {
            journal.append(&JournalEntry {
                app_index: i as u64,
                outcome: outcome_of(rec),
            });
        }
        EpochState {
            identity: self.config.identity(),
            done: self.done as u64,
            incremental: self.incremental,
            fingerprints: self.fingerprints.clone(),
            journal: journal.into_bytes(),
            last_render: self.last_render.clone(),
            adoption: self.adoption.clone(),
            distrust: self.distrust.clone(),
            rotation: self.rotation.clone(),
            ct_drift: self.ct_drift.clone(),
            event_mix: self.event_mix.clone(),
            costs: self.costs.clone(),
        }
        .to_bytes()
    }

    /// Saves the engine's state into a double-buffered
    /// [`CheckpointStore`], returning the new generation stamp.
    ///
    /// A failed save (crash, ENOSPC, torn write) can only damage the
    /// slot holding the *older* image — the last good checkpoint
    /// survives in the other slot and [`Evolution::from_checkpoint`]
    /// falls back to it.
    pub fn checkpoint<M: Media>(&self, store: &mut CheckpointStore<M>) -> Result<u64, MediaError> {
        store.save(&self.state_bytes())
    }

    /// Rebuilds an engine from the newest loadable checkpoint in a
    /// [`CheckpointStore`].
    ///
    /// Returns [`StateError::NoCheckpoint`] when neither slot holds a
    /// loadable image. When the newest slot was damaged and the load
    /// fell back to the older generation, the recovery is counted in
    /// this engine's [`recovery`](Evolution::recovery) stats (the
    /// "checkpoints recovered" run-health row) — explicitly degraded to
    /// an older-but-consistent state, never silently wrong.
    pub fn from_checkpoint<M: Media>(
        config: EpochConfig,
        store: &mut CheckpointStore<M>,
    ) -> Result<Self, StateError> {
        let recovered = store.load().ok_or(StateError::NoCheckpoint)?;
        let mut engine = Evolution::from_state(config, &recovered.payload)?;
        if recovered.fell_back {
            engine.recovery.checkpoints_recovered += 1;
        }
        Ok(engine)
    }

    /// Journal-scrub and checkpoint-fallback accounting accumulated over
    /// this engine's lifetime.
    pub fn recovery(&self) -> ScrubStats {
        self.recovery
    }

    /// Renders the run-health table for this evolution: replay/reanalyze
    /// totals plus the accumulated journal-repair and
    /// checkpoint-recovery accounting.
    pub fn render_run_health(&self) -> String {
        table_run_health(&RunHealthReport {
            journal_truncations: u32::from(!self.recovery.is_clean()),
            quarantined_bytes: self.recovery.quarantined_bytes,
            quarantined_records: self.recovery.quarantined_records,
            journal_repairs: self.recovery.repairs,
            checkpoints_recovered: self.recovery.checkpoints_recovered,
            replayed_prior_epoch: self.total_replayed(),
            reanalyzed_dirty: self.costs.iter().map(|c| c.reanalyzed).sum(),
            ..Default::default()
        })
    }

    /// Rebuilds an engine from a [`EpochState`] image: regenerates the
    /// world, replays the plan through the last completed epoch, and
    /// materializes the records from the persisted journal.
    pub fn from_state(config: EpochConfig, bytes: &[u8]) -> Result<Self, StateError> {
        let state = EpochState::from_bytes(bytes)?;
        if state.identity != config.identity() {
            return Err(StateError::IdentityMismatch);
        }
        let mut engine = Evolution::new(config, state.incremental);
        engine.done = state.done as usize;
        engine.fingerprints = state.fingerprints;
        engine.last_render = state.last_render;
        engine.adoption = state.adoption;
        engine.distrust = state.distrust;
        engine.rotation = state.rotation;
        engine.ct_drift = state.ct_drift;
        engine.event_mix = state.event_mix;
        engine.costs = state.costs;

        // Rebuild the last completed epoch's world and materialize the
        // journal against it (statics are recomputed, same as the study's
        // own materialization path).
        engine.evolve_to(engine.done.saturating_sub(1));
        let world = engine.world.as_ref().expect("evolve_to populates");
        let replay = ResultJournal::open(&state.journal).map_err(|_| StateError::BadHeader)?;
        if replay.fingerprint != engine.epoch_fp(engine.done - 1) || replay.truncated() {
            return Err(StateError::IdentityMismatch);
        }
        let decrypt_key = engine.config.world.ios_encryption_seed;
        let mut records = BTreeMap::new();
        for entry in &replay.entries {
            let i = entry.app_index as usize;
            let app = &world.apps[i];
            let statics = analyze_package_cached(
                &app.package,
                (app.id.platform == Platform::Ios).then_some(decrypt_key),
            );
            let record = match &entry.outcome {
                AppOutcome::Measured(m) => AppRecord::from_measured(i, app.id.clone(), statics, m),
                AppOutcome::Failed(e) => AppRecord::failed(i, app.id.clone(), statics, *e),
            };
            records.insert(i, record);
        }
        engine.records = records;
        Ok(engine)
    }
}

/// A completed record, re-encoded as the journal outcome it came from.
fn outcome_of(rec: &AppRecord) -> AppOutcome {
    match rec.error {
        Some(e) => AppOutcome::Failed(e),
        None => AppOutcome::Measured(Box::new(rec.to_measured())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_epoch_measures_everything() {
        let mut ev = Evolution::new(EpochConfig::tiny(0xB0), true);
        ev.next_epoch().unwrap();
        assert_eq!(ev.completed(), 1);
        assert_eq!(ev.costs[0].replayed, 0);
        assert!(ev.costs[0].reanalyzed > 0);
        assert!(!ev.full_report().is_empty());
    }

    #[test]
    fn incremental_replays_clean_apps_and_matches_cold() {
        let mut warm = Evolution::new(EpochConfig::tiny(0xB1), true);
        let mut cold = Evolution::new(EpochConfig::tiny(0xB1), false);
        for _ in 0..warm.epochs_total() {
            warm.next_epoch().unwrap();
            cold.next_epoch().unwrap();
            assert_eq!(
                warm.full_report(),
                cold.full_report(),
                "incremental epoch {} diverged from cold re-run",
                warm.completed() - 1
            );
        }
        assert!(
            warm.total_replayed() > 0,
            "evolution epochs must replay clean apps"
        );
        assert_eq!(cold.total_replayed(), 0);
    }

    #[test]
    fn checkpoint_roundtrip_and_crash_fallback() {
        use pinning_resilience::media::{FaultMedia, MediaFaultPlan};
        use pinning_resilience::recovery::CheckpointStore;

        let mut ev = Evolution::new(EpochConfig::tiny(0xB4), true);
        ev.next_epoch().unwrap();

        // Empty store: structured NoCheckpoint, not a panic.
        let mut empty = CheckpointStore::in_memory();
        assert_eq!(
            Evolution::from_checkpoint(EpochConfig::tiny(0xB4), &mut empty).unwrap_err(),
            StateError::NoCheckpoint
        );

        // Checkpoint after epoch 1 (slot 1, honest medium) and epoch 2
        // (slot 0, which rots every read-back): the newer image is
        // damaged, the load falls back to the epoch-1 generation, and
        // the fallback is reported.
        let mut store = CheckpointStore::new(
            FaultMedia::new(MediaFaultPlan::bit_rot(13)),
            FaultMedia::new(MediaFaultPlan::none(13)),
        );
        ev.checkpoint(&mut store).unwrap();
        let report_after_1 = ev.full_report();
        ev.next_epoch().unwrap();
        ev.checkpoint(&mut store).unwrap();
        store.crash();

        let restored = Evolution::from_checkpoint(EpochConfig::tiny(0xB4), &mut store).unwrap();
        assert_eq!(restored.completed(), 1, "fell back to the epoch-1 image");
        assert_eq!(restored.full_report(), report_after_1);
        assert_eq!(restored.recovery().checkpoints_recovered, 1);
        let health = restored.render_run_health();
        assert!(health.contains("checkpoints recovered"), "{health}");
    }

    #[test]
    fn state_roundtrip_restores_the_engine() {
        let mut ev = Evolution::new(EpochConfig::tiny(0xB2), true);
        ev.next_epoch().unwrap();
        ev.next_epoch().unwrap();
        let bytes = ev.state_bytes();
        let restored = Evolution::from_state(EpochConfig::tiny(0xB2), &bytes).unwrap();
        assert_eq!(restored.completed(), 2);
        assert_eq!(restored.full_report(), ev.full_report());
        assert_eq!(restored.fingerprints(), ev.fingerprints());
        assert_eq!(
            Evolution::from_state(EpochConfig::tiny(0xFF), &bytes).unwrap_err(),
            StateError::IdentityMismatch
        );
    }
}
