//! Per-app content fingerprints: the dirty-tracking key of the
//! incremental re-study engine.
//!
//! Modeled on cargo's fingerprint module: each app's fingerprint digests
//! everything that can change its measured verdict — the package bytes,
//! the ground-truth pin rules and planned behaviour, and the *served
//! state* of every destination the measurement can observe (chain,
//! validity at the current simulation time, revocation, platform root
//! trust, TLS posture). Epoch N+1 re-measures an app iff its fingerprint
//! differs from epoch N's; everything else replays its journaled verdict.
//!
//! Two deliberate choices keep the fingerprint *minimal but sound*:
//!
//! - Set-like fields (SDK names, domain lists) are hashed in sorted
//!   order, so field permutations and `HashMap` iteration order never
//!   flip a fingerprint (the proptests pin this down).
//! - Absolute time is hashed only through `validity.contains(now)` bits,
//!   so a `TimeAdvance` epoch dirties exactly the apps whose destination
//!   certificates cross an expiry boundary — not the whole store.

use pinning_app::app::MobileApp;
use pinning_app::platform::Platform;
use pinning_crypto::Sha256;
use pinning_store::world::World;
use std::collections::BTreeSet;

/// Destinations whose served state can influence this app's measurement:
/// planned connections, iOS associated domains, and (on iOS) the OS
/// background domains the device contacts during capture.
pub fn relevant_destinations(app: &MobileApp) -> BTreeSet<String> {
    let mut out: BTreeSet<String> = app
        .behavior
        .connections
        .iter()
        .map(|c| c.domain.clone())
        .collect();
    out.extend(app.associated_domains.iter().cloned());
    if app.id.platform == Platform::Ios {
        out.extend(
            pinning_netsim::APPLE_BACKGROUND_DOMAINS
                .iter()
                .map(|d| d.to_string()),
        );
    }
    out
}

fn sorted(xs: &[String]) -> Vec<&str> {
    let mut v: Vec<&str> = xs.iter().map(|s| s.as_str()).collect();
    v.sort_unstable();
    v
}

/// Content fingerprint of one app at the world's current state.
pub fn app_fingerprint(world: &World, app_index: usize) -> [u8; 32] {
    app_fingerprint_in(
        &world.apps[app_index],
        &world.network,
        &world.universe.aosp_oem,
        &world.universe.ios,
        world.now,
    )
}

/// Content fingerprint of one app against an explicit served state.
///
/// [`app_fingerprint`] delegates here with the materialized world's
/// network and root stores; the streaming engine calls this directly with
/// a *shard's* network, since a streamed study never materializes a
/// `World`. The digest is a pure function of the arguments, so a shard's
/// fingerprints match the monolithic world's whenever the shard serves
/// the same state (the shard determinism contract).
pub fn app_fingerprint_in(
    app: &MobileApp,
    network: &pinning_netsim::network::Network,
    android_store: &pinning_pki::store::RootStore,
    ios_store: &pinning_pki::store::RootStore,
    now: pinning_pki::time::SimTime,
) -> [u8; 32] {
    let mut h = Sha256::new();

    // --- App-side content: manifest, package, rules, behaviour. ---
    h.update(&[match app.id.platform {
        Platform::Android => 0u8,
        Platform::Ios => 1u8,
    }]);
    h.update(&app.package.content_hash());
    h.update(&[app.uses_nsc as u8]);
    for name in sorted(&app.sdk_names) {
        h.update(name.as_bytes());
        h.update(&[0]);
    }
    for d in sorted(&app.first_party_domains) {
        h.update(d.as_bytes());
        h.update(&[0]);
    }
    for d in sorted(&app.associated_domains) {
        h.update(d.as_bytes());
        h.update(&[0]);
    }
    // Pin rules and connections are order-significant (connections carry
    // index references into the rule list), so they hash in order. The
    // Debug encoding is deterministic and covers every field.
    for rule in &app.pin_rules {
        h.update(rule.pattern.as_bytes());
        h.update(&[rule.active_at_runtime as u8, rule.custom_pki as u8]);
        h.update(format!("{:?}|{:?}|{:?}", rule.target, rule.storage, rule.source).as_bytes());
        h.update(format!("{:?}", rule.pins).as_bytes());
        for c in &rule.pinned_certs {
            h.update(&c.fingerprint_sha256());
        }
    }
    for conn in &app.behavior.connections {
        h.update(format!("{conn:?}").as_bytes());
        h.update(&[0]);
    }

    // --- Destination-side state, in BTreeSet (deterministic) order. ---
    let store = match app.id.platform {
        Platform::Android => android_store,
        Platform::Ios => ios_store,
    };
    for domain in relevant_destinations(app) {
        h.update(domain.as_bytes());
        match network.resolve(&domain) {
            None => h.update(&[0]),
            Some(server) => {
                h.update(&[1]);
                for cert in server.chain.certs() {
                    h.update(&cert.fingerprint_sha256());
                    h.update(&[
                        cert.tbs.validity.contains(now) as u8,
                        network.crl.is_revoked(cert.tbs.serial) as u8,
                    ]);
                }
                let trusted = server
                    .chain
                    .certs()
                    .last()
                    .is_some_and(|top| store.contains(top));
                h.update(&[trusted as u8]);
                h.update(format!("{:?}|{:?}", server.versions, server.ciphers).as_bytes());
                h.update(&server.reliability.to_bits().to_le_bytes());
                h.update(&(server.response_bytes as u64).to_le_bytes());
            }
        }
    }

    h.finalize()
}

/// Fingerprints of every app, in index order.
pub fn all_fingerprints(world: &World) -> Vec<[u8; 32]> {
    (0..world.apps.len())
        .map(|i| app_fingerprint(world, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_store::config::WorldConfig;

    #[test]
    fn fingerprint_is_deterministic_across_regeneration() {
        let a = World::generate(WorldConfig::tiny(0xE0));
        let b = World::generate(WorldConfig::tiny(0xE0));
        assert_eq!(all_fingerprints(&a), all_fingerprints(&b));
    }

    #[test]
    fn streamed_fingerprints_are_invariant_to_shard_size() {
        // The streaming engine fingerprints apps against their *shard's*
        // network. The shard determinism contract says a product's served
        // state does not depend on which shard materialized it — so the
        // same app must fingerprint identically at any shard size.
        use pinning_store::shard::StreamWorld;
        use std::collections::BTreeMap;

        let collect = |shard_size: usize| -> BTreeMap<String, [u8; 32]> {
            let world = StreamWorld::new(WorldConfig::tiny(0xE2), shard_size);
            let mut out = BTreeMap::new();
            for k in 0..world.n_shards() {
                let shard = world.generate_shard(k);
                for sa in &shard.apps {
                    let fp = app_fingerprint_in(
                        &sa.app,
                        &shard.network,
                        &world.universe().aosp_oem,
                        &world.universe().ios,
                        shard.now,
                    );
                    out.insert(sa.app.id.to_string(), fp);
                }
            }
            out
        };

        let small = collect(5);
        let large = collect(64);
        assert_eq!(small.len(), large.len());
        assert_eq!(small, large, "shard size changed a streamed fingerprint");
    }

    #[test]
    fn fingerprint_tracks_pin_rule_state() {
        let mut world = World::generate(WorldConfig::tiny(0xE1));
        let victim = (0..world.apps.len())
            .find(|&i| !world.apps[i].pin_rules.is_empty())
            .expect("tiny world has pinning apps");
        let before = app_fingerprint(&world, victim);
        world.apps[victim].pin_rules[0].active_at_runtime =
            !world.apps[victim].pin_rules[0].active_at_runtime;
        assert_ne!(before, app_fingerprint(&world, victim));
    }
}
