//! Property-style tests for the TLS simulator, driven by a deterministic
//! SplitMix64 input sweep (no external crates, fully offline).

use pinning_crypto::sig::KeyPair;
use pinning_crypto::SplitMix64;
use pinning_pki::authority::CertificateAuthority;
use pinning_pki::chain::CertificateChain;
use pinning_pki::name::DistinguishedName;
use pinning_pki::pin::{Pin, PinSet, SpkiPin};
use pinning_pki::store::RootStore;
use pinning_pki::time::{SimTime, Validity, YEAR};
use pinning_pki::validate::RevocationList;
use pinning_tls::verify::CertPolicy;
use pinning_tls::{establish, CipherSuite, ClientConfig, ServerEndpoint, TlsLibrary, TlsVersion};

const CASES: u64 = 60;

struct Env {
    store: RootStore,
    chain: CertificateChain,
}

fn env(seed: u64) -> Env {
    let mut rng = SplitMix64::new(seed);
    let mut root = CertificateAuthority::new_root(
        DistinguishedName::new("Root", "Sim", "US"),
        &mut rng,
        SimTime(0),
    );
    let key = KeyPair::generate(&mut rng);
    let leaf = root.issue_leaf(
        &["h.example".to_string()],
        "H",
        &key,
        Validity::starting(SimTime(0), YEAR),
    );
    let mut store = RootStore::new("device");
    store.add(root.cert.clone());
    Env {
        store,
        chain: CertificateChain::new(vec![leaf, root.cert.clone()]),
    }
}

const LIBRARIES: [TlsLibrary; 7] = [
    TlsLibrary::Conscrypt,
    TlsLibrary::OkHttp,
    TlsLibrary::Cronet,
    TlsLibrary::NsUrlSession,
    TlsLibrary::AfNetworking,
    TlsLibrary::TrustKit,
    TlsLibrary::CustomNative,
];

fn pick_library(rng: &mut SplitMix64) -> TlsLibrary {
    LIBRARIES[rng.next_below(LIBRARIES.len() as u64) as usize]
}

#[test]
fn handshake_is_deterministic() {
    let mut rng = SplitMix64::new(0xde7);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let lib = pick_library(&mut rng);
        let e = env(seed);
        let client = ClientConfig::modern(lib);
        let server = ServerEndpoint::modern(&e.chain);
        let a = establish(
            &client,
            &server,
            "h.example",
            SimTime(10),
            &e.store,
            &RevocationList::empty(),
        );
        let b = establish(
            &client,
            &server,
            "h.example",
            SimTime(10),
            &e.store,
            &RevocationList::empty(),
        );
        assert_eq!(a.transcript, b.transcript);
        assert_eq!(a.result.is_ok(), b.result.is_ok());
    }
}

#[test]
fn negotiated_version_is_offered_by_both() {
    let mut rng = SplitMix64::new(0x7e6);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let client_13 = rng.chance(0.5);
        let server_13 = rng.chance(0.5);
        let e = env(seed);
        let mut client = ClientConfig::modern(TlsLibrary::OkHttp);
        if !client_13 {
            client.offered_versions = vec![TlsVersion::V1_2];
        }
        let mut server = ServerEndpoint::modern(&e.chain);
        if !server_13 {
            server.versions = vec![TlsVersion::V1_2];
        }
        let out = establish(
            &client,
            &server,
            "h.example",
            SimTime(10),
            &e.store,
            &RevocationList::empty(),
        );
        let session = out.result.unwrap();
        assert!(client.offered_versions.contains(&session.version));
        assert!(server.versions.contains(&session.version));
        if client_13 && server_13 {
            assert_eq!(session.version, TlsVersion::V1_3);
        }
        assert!(session.cipher.valid_for(session.version));
    }
}

#[test]
fn pin_rejection_independent_of_library_outcome() {
    // Whatever the stack, a non-matching pin must abort the connection;
    // only the wire signature differs.
    let mut rng = SplitMix64::new(0x919);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let lib = pick_library(&mut rng);
        let e = env(seed);
        let mut other_rng = SplitMix64::new(seed ^ 0xdead);
        let other = CertificateAuthority::new_root(
            DistinguishedName::new("Other", "Sim", "US"),
            &mut other_rng,
            SimTime(0),
        );
        let mut client = ClientConfig::modern(lib);
        client.policy = CertPolicy::pinned(PinSet::from_pins(vec![Pin::Spki(SpkiPin::sha256_of(
            &other.cert,
        ))]));
        let server = ServerEndpoint::modern(&e.chain);
        let out = establish(
            &client,
            &server,
            "h.example",
            SimTime(10),
            &e.store,
            &RevocationList::empty(),
        );
        assert!(out.result.is_err());
        // The transcript must show a client-side teardown of some kind.
        let t = &out.transcript;
        assert!(
            t.client_rst() || t.client_fin() || !t.plaintext_alerts().is_empty(),
            "no teardown signal for {lib:?}"
        );
    }
}

#[test]
fn weak_cipher_flag_matches_offer() {
    let mut rng = SplitMix64::new(0xc1f);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let legacy = rng.chance(0.5);
        let e = env(seed);
        let mut client = ClientConfig::modern(TlsLibrary::OkHttp);
        client.offered_ciphers = if legacy {
            CipherSuite::legacy_client_list()
        } else {
            CipherSuite::modern_client_list()
        };
        let server = ServerEndpoint::modern(&e.chain);
        let out = establish(
            &client,
            &server,
            "h.example",
            SimTime(10),
            &e.store,
            &RevocationList::empty(),
        );
        let advertised_weak = out.transcript.offered_ciphers.iter().any(|c| c.is_weak());
        assert_eq!(advertised_weak, legacy);
        // The *negotiated* suite is never weak against a sane server.
        if let Ok(s) = out.result {
            assert!(!s.cipher.is_weak());
        }
    }
}
