//! The handshake driver: connect a client configuration to a server
//! endpoint and emit the wire transcript a capture point would record.

use crate::alert::{AlertDescription, AlertLevel, ENCRYPTED_ALERT_WIRE_LEN};
use crate::cipher::{select_cipher, CipherSuite};
use crate::handshake::{ClientHello, ServerHello};
use crate::library::{FailureSignal, PinCheckPhase, TlsLibrary};
use crate::record::{ContentType, Direction, RecordEvent, TcpEvent};
use crate::transcript::ConnectionTranscript;
use crate::verify::{CertPolicy, VerifyDecision};
use crate::version::{negotiate, TlsVersion};
use pinning_pki::chain::CertificateChain;
use pinning_pki::store::RootStore;
use pinning_pki::time::SimTime;
use pinning_pki::validate::RevocationList;
use pinning_pki::ValidationError;

/// Client-side connection configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Versions offered in the ClientHello.
    pub offered_versions: Vec<TlsVersion>,
    /// Cipher suites offered in the ClientHello.
    pub offered_ciphers: Vec<CipherSuite>,
    /// Whether to send SNI (99% of real connections do).
    pub send_sni: bool,
    /// The TLS stack in use (determines failure wire behaviour and
    /// hookability).
    pub library: TlsLibrary,
    /// Certificate policy (system validation and/or pins).
    pub policy: CertPolicy,
}

impl ClientConfig {
    /// A typical modern client: TLS 1.2+1.3, modern ciphers, SNI, system
    /// validation via `library`.
    pub fn modern(library: TlsLibrary) -> Self {
        ClientConfig {
            offered_versions: vec![TlsVersion::V1_2, TlsVersion::V1_3],
            offered_ciphers: CipherSuite::modern_client_list(),
            send_sni: true,
            library,
            policy: CertPolicy::system_default(),
        }
    }
}

/// Server-side endpoint parameters for one handshake.
#[derive(Debug, Clone)]
pub struct ServerEndpoint<'a> {
    /// Chain presented in the Certificate message.
    pub chain: &'a CertificateChain,
    /// Versions the server supports.
    pub versions: Vec<TlsVersion>,
    /// Cipher suites the server supports, in preference order.
    pub ciphers: Vec<CipherSuite>,
}

impl<'a> ServerEndpoint<'a> {
    /// A typical modern server.
    pub fn modern(chain: &'a CertificateChain) -> Self {
        ServerEndpoint {
            chain,
            versions: vec![TlsVersion::V1_2, TlsVersion::V1_3],
            ciphers: CipherSuite::typical_server_list(),
        }
    }
}

/// Why a handshake failed.
#[derive(Debug, Clone, PartialEq)]
pub enum HandshakeError {
    /// No protocol version in common.
    NoCommonVersion,
    /// No cipher suite in common.
    NoCommonCipher,
    /// Standard certificate validation rejected the chain.
    CertRejected(ValidationError),
    /// Pin enforcement rejected the chain — the signal the study hunts.
    PinRejected,
}

/// An established session, able to move application data onto a transcript.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Session {
    /// Negotiated version.
    pub version: TlsVersion,
    /// Negotiated cipher suite.
    pub cipher: CipherSuite,
}

impl Session {
    /// Records `len` bytes of client→server application data.
    pub fn send_client_data(&self, t: &mut ConnectionTranscript, len: usize) {
        t.push_record(RecordEvent::encrypted(
            Direction::ClientToServer,
            self.version,
            ContentType::ApplicationData,
            len,
        ));
    }

    /// Records `len` bytes of server→client application data.
    pub fn send_server_data(&self, t: &mut ConnectionTranscript, len: usize) {
        t.push_record(RecordEvent::encrypted(
            Direction::ServerToClient,
            self.version,
            ContentType::ApplicationData,
            len,
        ));
    }

    /// Orderly closure: encrypted close_notify then FIN.
    pub fn close(&self, t: &mut ConnectionTranscript) {
        t.push_record(RecordEvent::encrypted(
            Direction::ClientToServer,
            self.version,
            ContentType::Alert,
            ENCRYPTED_ALERT_WIRE_LEN,
        ));
        t.push_tcp(TcpEvent::Fin {
            from: Direction::ClientToServer,
        });
    }
}

/// Result of [`establish`].
#[derive(Debug, Clone, PartialEq)]
pub struct HandshakeOutcome {
    /// What the capture point saw.
    pub transcript: ConnectionTranscript,
    /// The session, or why it failed.
    pub result: Result<Session, HandshakeError>,
}

/// Drives a full handshake between `client` and `server` for `hostname`,
/// evaluating the client's certificate policy against `device_store`.
///
/// Produces the same wire observables the paper's capture pipeline works
/// from — including TLS 1.3's disguised records and per-library failure
/// signals.
pub fn establish(
    client: &ClientConfig,
    server: &ServerEndpoint<'_>,
    hostname: &str,
    now: SimTime,
    device_store: &RootStore,
    crl: &RevocationList,
) -> HandshakeOutcome {
    let mut t = ConnectionTranscript::new();
    let hello = ClientHello {
        sni: client.send_sni.then(|| hostname.to_string()),
        offered_versions: client.offered_versions.clone(),
        offered_ciphers: client.offered_ciphers.clone(),
    };
    t.sni = hello.sni.clone();
    t.offered_versions = hello.offered_versions.clone();
    t.offered_ciphers = hello.offered_ciphers.clone();

    t.push_tcp(TcpEvent::Established);
    t.push_record(RecordEvent::handshake(
        Direction::ClientToServer,
        hello.wire_len(),
    ));

    // Version negotiation.
    let Some(version) = negotiate(&client.offered_versions, &server.versions) else {
        t.push_record(RecordEvent::plaintext_alert(
            Direction::ServerToClient,
            AlertLevel::Fatal,
            AlertDescription::ProtocolVersion,
        ));
        t.push_tcp(TcpEvent::Fin {
            from: Direction::ServerToClient,
        });
        return HandshakeOutcome {
            transcript: t,
            result: Err(HandshakeError::NoCommonVersion),
        };
    };

    // Cipher negotiation.
    let Some(cipher) = select_cipher(&client.offered_ciphers, &server.ciphers, version) else {
        t.push_record(RecordEvent::plaintext_alert(
            Direction::ServerToClient,
            AlertLevel::Fatal,
            AlertDescription::HandshakeFailure,
        ));
        t.push_tcp(TcpEvent::Fin {
            from: Direction::ServerToClient,
        });
        return HandshakeOutcome {
            transcript: t,
            result: Err(HandshakeError::NoCommonCipher),
        };
    };

    let server_hello = ServerHello { version, cipher };
    t.negotiated = Some((version, cipher));
    t.push_record(RecordEvent::handshake(
        Direction::ServerToClient,
        server_hello.wire_len(),
    ));

    // Certificate message: plaintext under ≤1.2, encrypted under 1.3.
    let chain_len: usize = server
        .chain
        .certs()
        .iter()
        .map(|c| c.der_bytes().len())
        .sum();
    if version.disguises_encrypted_records() {
        // EncryptedExtensions + Certificate + CertVerify + Finished, bundled.
        t.push_record(RecordEvent::encrypted(
            Direction::ServerToClient,
            version,
            ContentType::Handshake,
            chain_len + 220,
        ));
    } else {
        t.push_record(RecordEvent::handshake(
            Direction::ServerToClient,
            chain_len + 160,
        ));
    }

    // Client evaluates the chain.
    let decision = client
        .policy
        .evaluate(server.chain.certs(), hostname, now, device_store, crl);

    let pin_phase = client.library.pin_check_phase();
    let fail =
        |t: &mut ConnectionTranscript, signal: FailureSignal, sent_finished: bool| match signal {
            FailureSignal::FatalAlert(desc) => {
                if version.disguises_encrypted_records() || sent_finished {
                    // Post-handshake (or 1.3 in-handshake) alerts are encrypted.
                    t.push_record(RecordEvent::encrypted(
                        Direction::ClientToServer,
                        version,
                        ContentType::Alert,
                        ENCRYPTED_ALERT_WIRE_LEN,
                    ));
                } else {
                    t.push_record(RecordEvent::plaintext_alert(
                        Direction::ClientToServer,
                        AlertLevel::Fatal,
                        desc,
                    ));
                }
                t.push_tcp(TcpEvent::Fin {
                    from: Direction::ClientToServer,
                });
            }
            FailureSignal::TcpRst => {
                t.push_tcp(TcpEvent::Rst {
                    from: Direction::ClientToServer,
                });
            }
            FailureSignal::SilentFin => {
                t.push_tcp(TcpEvent::Fin {
                    from: Direction::ClientToServer,
                });
            }
        };

    // In-handshake rejections (system validation always; pins for
    // during-handshake libraries).
    match &decision {
        VerifyDecision::RejectSystem(e) => {
            fail(&mut t, client.library.system_failure_signal(), false);
            return HandshakeOutcome {
                transcript: t,
                result: Err(HandshakeError::CertRejected(e.clone())),
            };
        }
        VerifyDecision::RejectPin if pin_phase == PinCheckPhase::DuringHandshake => {
            fail(&mut t, client.library.pin_failure_signal(), false);
            return HandshakeOutcome {
                transcript: t,
                result: Err(HandshakeError::PinRejected),
            };
        }
        _ => {}
    }

    // Client Finished. Under 1.3 this is the client's first encrypted record
    // and is disguised as application data (the heuristic's anchor).
    t.push_record(RecordEvent::encrypted(
        Direction::ClientToServer,
        version,
        ContentType::Handshake,
        if version.disguises_encrypted_records() {
            40
        } else {
            44
        },
    ));
    if !version.disguises_encrypted_records() {
        // TLS ≤1.2: server CCS + Finished back.
        t.push_record(RecordEvent::encrypted(
            Direction::ServerToClient,
            version,
            ContentType::Handshake,
            44,
        ));
    } else {
        // TLS 1.3: NewSessionTicket(s).
        t.push_record(RecordEvent::encrypted(
            Direction::ServerToClient,
            version,
            ContentType::Handshake,
            180,
        ));
    }

    // Post-handshake pin enforcement (OkHttp-style).
    if decision == VerifyDecision::RejectPin && pin_phase == PinCheckPhase::PostHandshake {
        fail(&mut t, client.library.pin_failure_signal(), true);
        return HandshakeOutcome {
            transcript: t,
            result: Err(HandshakeError::PinRejected),
        };
    }

    HandshakeOutcome {
        transcript: t,
        result: Ok(Session { version, cipher }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_crypto::sig::KeyPair;
    use pinning_crypto::SplitMix64;
    use pinning_pki::authority::CertificateAuthority;
    use pinning_pki::name::DistinguishedName;
    use pinning_pki::pin::{Pin, PinSet, SpkiPin};
    use pinning_pki::time::{Validity, YEAR};

    struct Fixture {
        store: RootStore,
        chain: CertificateChain,
        mitm_chain: CertificateChain,
        root_cert: pinning_pki::Certificate,
        now: SimTime,
    }

    fn fixture() -> Fixture {
        let mut rng = SplitMix64::new(0xc0);
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("Root", "Sim", "US"),
            &mut rng,
            SimTime(0),
        );
        let key = KeyPair::generate(&mut rng);
        let leaf = root.issue_leaf(
            &["api.bank.com".to_string()],
            "Bank",
            &key,
            Validity::starting(SimTime(0), YEAR),
        );
        let chain = CertificateChain::new(vec![leaf, root.cert.clone()]);

        let mut mitm = CertificateAuthority::new_root(
            DistinguishedName::new("mitmproxy", "mitmproxy", "US"),
            &mut rng,
            SimTime(0),
        );
        let mk = KeyPair::generate(&mut rng);
        let forged = mitm.issue_leaf(
            &["api.bank.com".to_string()],
            "Bank",
            &mk,
            Validity::starting(SimTime(0), YEAR),
        );
        let mitm_chain = CertificateChain::new(vec![forged, mitm.cert.clone()]);

        let mut store = RootStore::new("device");
        store.add(root.cert.clone());
        store.add(mitm.cert.clone());
        Fixture {
            store,
            chain,
            mitm_chain,
            root_cert: root.cert.clone(),
            now: SimTime(100),
        }
    }

    fn run(f: &Fixture, client: &ClientConfig, chain: &CertificateChain) -> HandshakeOutcome {
        let server = ServerEndpoint::modern(chain);
        establish(
            client,
            &server,
            "api.bank.com",
            f.now,
            &f.store,
            &RevocationList::empty(),
        )
    }

    #[test]
    fn happy_path_tls13() {
        let f = fixture();
        let client = ClientConfig::modern(TlsLibrary::Conscrypt);
        let out = run(&f, &client, &f.chain);
        let session = out.result.unwrap();
        assert_eq!(session.version, TlsVersion::V1_3);
        assert!(out.transcript.handshake_reached_encryption());
        // First client encrypted record is the (disguised) Finished.
        let first = out.transcript.client_encrypted_appdata();
        assert_eq!(first[0].inner_type, ContentType::Handshake);
    }

    #[test]
    fn happy_path_tls12_when_13_unavailable() {
        let f = fixture();
        let client = ClientConfig::modern(TlsLibrary::Conscrypt);
        let mut server = ServerEndpoint::modern(&f.chain);
        server.versions = vec![TlsVersion::V1_2];
        let out = establish(
            &client,
            &server,
            "api.bank.com",
            f.now,
            &f.store,
            &RevocationList::empty(),
        );
        assert_eq!(out.result.unwrap().version, TlsVersion::V1_2);
        // Under 1.2 nothing is disguised: no app-data-looking client records yet.
        assert!(out.transcript.client_encrypted_appdata().is_empty());
    }

    #[test]
    fn version_mismatch_yields_protocol_alert_not_pin_signal() {
        let f = fixture();
        let mut client = ClientConfig::modern(TlsLibrary::Conscrypt);
        client.offered_versions = vec![TlsVersion::V1_0];
        let out = run(&f, &client, &f.chain);
        assert_eq!(out.result, Err(HandshakeError::NoCommonVersion));
        let alerts = out.transcript.plaintext_alerts();
        assert_eq!(
            alerts[0].plaintext_alert.unwrap().1,
            AlertDescription::ProtocolVersion
        );
    }

    #[test]
    fn pinned_app_rejects_mitm_conscrypt_during_handshake() {
        let f = fixture();
        let mut client = ClientConfig::modern(TlsLibrary::Conscrypt);
        client.policy = CertPolicy::pinned(PinSet::from_pins(vec![Pin::Spki(SpkiPin::sha256_of(
            &f.root_cert,
        ))]));
        let out = run(&f, &client, &f.mitm_chain);
        assert_eq!(out.result, Err(HandshakeError::PinRejected));
        // TLS 1.3: rejection appears as one encrypted (disguised) alert of
        // exactly the alert length, and it's the FIRST client encrypted record.
        let recs = out.transcript.client_encrypted_appdata();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].payload_len, ENCRYPTED_ALERT_WIRE_LEN);
        assert_eq!(recs[0].inner_type, ContentType::Alert);
    }

    #[test]
    fn pinned_app_rejects_mitm_okhttp_post_handshake() {
        let f = fixture();
        let mut client = ClientConfig::modern(TlsLibrary::OkHttp);
        client.policy = CertPolicy::pinned(PinSet::from_pins(vec![Pin::Spki(SpkiPin::sha256_of(
            &f.root_cert,
        ))]));
        let out = run(&f, &client, &f.mitm_chain);
        assert_eq!(out.result, Err(HandshakeError::PinRejected));
        // OkHttp completes the handshake (Finished seen), then RSTs.
        assert!(out.transcript.client_rst());
        let recs = out.transcript.client_encrypted_appdata();
        assert_eq!(recs.len(), 1, "only the Finished");
        assert_eq!(recs[0].inner_type, ContentType::Handshake);
    }

    #[test]
    fn pinned_app_accepts_genuine_chain_and_sends_data() {
        let f = fixture();
        let mut client = ClientConfig::modern(TlsLibrary::OkHttp);
        client.policy = CertPolicy::pinned(PinSet::from_pins(vec![Pin::Spki(SpkiPin::sha256_of(
            &f.root_cert,
        ))]));
        let mut out = run(&f, &client, &f.chain);
        let session = out.result.unwrap();
        session.send_client_data(&mut out.transcript, 900);
        session.send_server_data(&mut out.transcript, 4000);
        session.close(&mut out.transcript);
        assert!(out.transcript.client_appdata_bytes() >= 900);
        assert!(out.transcript.client_fin());
    }

    #[test]
    fn unpinned_app_accepts_mitm_when_ca_installed() {
        let f = fixture();
        let client = ClientConfig::modern(TlsLibrary::Conscrypt);
        let out = run(&f, &client, &f.mitm_chain);
        assert!(out.result.is_ok(), "{:?}", out.result);
    }

    #[test]
    fn system_reject_when_ca_not_installed() {
        let f = fixture();
        let mut bare = RootStore::new("factory");
        bare.add(f.chain.certs()[1].clone());
        let client = ClientConfig::modern(TlsLibrary::Conscrypt);
        let server = ServerEndpoint::modern(&f.mitm_chain);
        let out = establish(
            &client,
            &server,
            "api.bank.com",
            f.now,
            &bare,
            &RevocationList::empty(),
        );
        assert!(matches!(out.result, Err(HandshakeError::CertRejected(_))));
    }

    #[test]
    fn silent_fin_library_leaves_no_alert() {
        let f = fixture();
        let mut client = ClientConfig::modern(TlsLibrary::AfNetworking);
        client.policy = CertPolicy::pinned(PinSet::from_pins(vec![Pin::Spki(SpkiPin::sha256_of(
            &f.root_cert,
        ))]));
        let out = run(&f, &client, &f.mitm_chain);
        assert_eq!(out.result, Err(HandshakeError::PinRejected));
        assert!(out.transcript.plaintext_alerts().is_empty());
        assert!(!out.transcript.client_rst());
        assert!(out.transcript.client_fin());
    }

    #[test]
    fn sni_respects_config() {
        let f = fixture();
        let mut client = ClientConfig::modern(TlsLibrary::Conscrypt);
        client.send_sni = false;
        let out = run(&f, &client, &f.chain);
        assert_eq!(out.transcript.sni, None);
    }
}
