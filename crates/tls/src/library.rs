//! TLS library identities.
//!
//! Which stack an app links determines two things the study measures:
//!
//! 1. **how a pinning failure appears on the wire** (§4.2.2: "pinned TLS
//!    connections typically send failure signals via a TLS alert or TCP
//!    connection reset") — stacks differ;
//! 2. **whether Frida-style instrumentation can disable its certificate
//!    checks** (§4.3: circumvention succeeded for ≈51.5% of pinned Android
//!    destinations and ≈66.2% of iOS ones; custom TLS implementations
//!    resist hooking).

use crate::alert::AlertDescription;

/// How a client signals a certificate/pin rejection on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureSignal {
    /// Fatal TLS alert with the given description.
    FatalAlert(AlertDescription),
    /// Abortive TCP reset, no alert.
    TcpRst,
    /// Quiet orderly close (FIN) without an alert — the hardest case for
    /// naive detection.
    SilentFin,
}

/// Pinning-check timing relative to the handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinCheckPhase {
    /// Inside certificate verification, before the client Finished
    /// (platform trust managers, TrustKit).
    DuringHandshake,
    /// After the handshake completes, before first use (OkHttp's
    /// `CertificatePinner`, interceptor-style checks).
    PostHandshake,
}

/// A TLS stack an app may link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlsLibrary {
    /// Android platform TLS (Conscrypt/BoringSSL) via `X509TrustManager`.
    Conscrypt,
    /// OkHttp with `CertificatePinner` (rides on Conscrypt but enforces pins
    /// itself, post-handshake).
    OkHttp,
    /// Android WebView / Cronet-style stack.
    Cronet,
    /// iOS `NSURLSession` with `URLSessionDelegate` trust evaluation.
    NsUrlSession,
    /// AFNetworking's `AFSecurityPolicy` (iOS).
    AfNetworking,
    /// TrustKit (iOS/Android SPKI pinning SDK).
    TrustKit,
    /// A custom/obfuscated native TLS implementation statically linked into
    /// the app — resists Frida hooking (§4.3's failure cases).
    CustomNative,
}

impl TlsLibrary {
    /// Whether the §4.3 Frida hooks can disable this stack's certificate
    /// checks.
    pub fn frida_hookable(self) -> bool {
        !matches!(self, TlsLibrary::CustomNative)
    }

    /// How this stack signals a *pin* rejection.
    pub fn pin_failure_signal(self) -> FailureSignal {
        match self {
            // OkHttp throws SSLPeerUnverifiedException after the handshake;
            // the socket is closed abortively.
            TlsLibrary::OkHttp => FailureSignal::TcpRst,
            // Platform trust managers emit a fatal bad_certificate alert.
            TlsLibrary::Conscrypt | TlsLibrary::Cronet => {
                FailureSignal::FatalAlert(AlertDescription::BadCertificate)
            }
            // NSURLSession cancels the task; observed as a RST.
            TlsLibrary::NsUrlSession => FailureSignal::TcpRst,
            // AFNetworking tears down quietly.
            TlsLibrary::AfNetworking => FailureSignal::SilentFin,
            // TrustKit reports through the trust evaluation → alert.
            TlsLibrary::TrustKit => FailureSignal::FatalAlert(AlertDescription::BadCertificate),
            // Custom stacks do whatever; modeled as RST.
            TlsLibrary::CustomNative => FailureSignal::TcpRst,
        }
    }

    /// How this stack signals a *system validation* (untrusted chain)
    /// rejection.
    pub fn system_failure_signal(self) -> FailureSignal {
        match self {
            TlsLibrary::AfNetworking => FailureSignal::SilentFin,
            TlsLibrary::CustomNative => FailureSignal::TcpRst,
            _ => FailureSignal::FatalAlert(AlertDescription::UnknownCa),
        }
    }

    /// When this stack enforces pins.
    pub fn pin_check_phase(self) -> PinCheckPhase {
        match self {
            TlsLibrary::OkHttp | TlsLibrary::AfNetworking => PinCheckPhase::PostHandshake,
            _ => PinCheckPhase::DuringHandshake,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            TlsLibrary::Conscrypt => "Conscrypt",
            TlsLibrary::OkHttp => "OkHttp",
            TlsLibrary::Cronet => "Cronet",
            TlsLibrary::NsUrlSession => "NSURLSession",
            TlsLibrary::AfNetworking => "AFNetworking",
            TlsLibrary::TrustKit => "TrustKit",
            TlsLibrary::CustomNative => "CustomNative",
        }
    }
}

impl core::fmt::Display for TlsLibrary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn custom_native_resists_hooking() {
        assert!(!TlsLibrary::CustomNative.frida_hookable());
        assert!(TlsLibrary::OkHttp.frida_hookable());
        assert!(TlsLibrary::NsUrlSession.frida_hookable());
    }

    #[test]
    fn okhttp_checks_pins_post_handshake() {
        assert_eq!(
            TlsLibrary::OkHttp.pin_check_phase(),
            PinCheckPhase::PostHandshake
        );
        assert_eq!(
            TlsLibrary::Conscrypt.pin_check_phase(),
            PinCheckPhase::DuringHandshake
        );
    }

    #[test]
    fn failure_signals_cover_all_variants() {
        use std::collections::HashSet;
        let libs = [
            TlsLibrary::Conscrypt,
            TlsLibrary::OkHttp,
            TlsLibrary::Cronet,
            TlsLibrary::NsUrlSession,
            TlsLibrary::AfNetworking,
            TlsLibrary::TrustKit,
            TlsLibrary::CustomNative,
        ];
        let signals: HashSet<_> = libs.iter().map(|l| l.pin_failure_signal()).collect();
        // All three failure modes are represented in the ecosystem.
        assert!(signals.contains(&FailureSignal::TcpRst));
        assert!(signals.contains(&FailureSignal::SilentFin));
        assert!(signals
            .iter()
            .any(|s| matches!(s, FailureSignal::FatalAlert(_))));
    }
}
