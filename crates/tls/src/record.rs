//! The record layer: what a passive observer (the capture point) sees.

use crate::alert::{AlertDescription, AlertLevel};
use crate::version::TlsVersion;

/// Direction of a wire event relative to the device under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Device → server.
    ClientToServer,
    /// Server → device.
    ServerToClient,
}

/// Record-layer content types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentType {
    /// Handshake messages.
    Handshake,
    /// Alert records.
    Alert,
    /// Application data.
    ApplicationData,
    /// ChangeCipherSpec (legacy; also sent by TLS 1.3 for middlebox compat).
    ChangeCipherSpec,
}

/// A single TLS record as seen on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordEvent {
    /// Direction of travel.
    pub direction: Direction,
    /// The content type stamped on the wire. For encrypted TLS 1.3 records
    /// this is always [`ContentType::ApplicationData`] regardless of the
    /// inner type — the disguise the paper's heuristic must see through.
    pub wire_type: ContentType,
    /// The true inner content type. A passive observer cannot read this for
    /// encrypted records; analysis code must not consult it when
    /// implementing the paper's heuristics (it exists for oracle/ablation
    /// benches only).
    pub inner_type: ContentType,
    /// Whether the record is encrypted.
    pub encrypted: bool,
    /// Payload length in bytes (observable).
    pub payload_len: usize,
    /// If this record carries a *plaintext* alert, its contents (observable).
    pub plaintext_alert: Option<(AlertLevel, AlertDescription)>,
}

impl RecordEvent {
    /// Builds a plaintext handshake record.
    pub fn handshake(direction: Direction, payload_len: usize) -> Self {
        RecordEvent {
            direction,
            wire_type: ContentType::Handshake,
            inner_type: ContentType::Handshake,
            encrypted: false,
            payload_len,
            plaintext_alert: None,
        }
    }

    /// Builds a plaintext alert record.
    pub fn plaintext_alert(
        direction: Direction,
        level: AlertLevel,
        desc: AlertDescription,
    ) -> Self {
        RecordEvent {
            direction,
            wire_type: ContentType::Alert,
            inner_type: ContentType::Alert,
            encrypted: false,
            payload_len: crate::alert::PLAINTEXT_ALERT_LEN,
            plaintext_alert: Some((level, desc)),
        }
    }

    /// Builds an encrypted record under `version`; the wire type is
    /// disguised for TLS 1.3.
    pub fn encrypted(
        direction: Direction,
        version: TlsVersion,
        inner_type: ContentType,
        payload_len: usize,
    ) -> Self {
        let wire_type = if version.disguises_encrypted_records() {
            ContentType::ApplicationData
        } else {
            inner_type
        };
        RecordEvent {
            direction,
            wire_type,
            inner_type,
            encrypted: true,
            payload_len,
            plaintext_alert: None,
        }
    }

    /// Whether the record *looks like* application data to a passive
    /// observer (this is the only app-data signal the paper's pipeline may
    /// use).
    pub fn looks_like_application_data(&self) -> bool {
        self.wire_type == ContentType::ApplicationData
    }
}

/// TCP-level events interleaved with TLS records in a capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcpEvent {
    /// Three-way handshake completed.
    Established,
    /// Abortive reset.
    Rst {
        /// Which side sent the RST.
        from: Direction,
    },
    /// Orderly FIN teardown.
    Fin {
        /// Which side initiated the FIN.
        from: Direction,
    },
}

/// Anything observable on the wire: a TCP event or a TLS record.
#[derive(Debug, Clone, PartialEq)]
pub enum WireEvent {
    /// TCP-level event.
    Tcp(TcpEvent),
    /// TLS record.
    Record(RecordEvent),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tls12_encrypted_alert_visible_as_alert() {
        let r = RecordEvent::encrypted(
            Direction::ClientToServer,
            TlsVersion::V1_2,
            ContentType::Alert,
            24,
        );
        assert_eq!(r.wire_type, ContentType::Alert);
        assert!(!r.looks_like_application_data());
    }

    #[test]
    fn tls13_encrypted_alert_disguised() {
        let r = RecordEvent::encrypted(
            Direction::ClientToServer,
            TlsVersion::V1_3,
            ContentType::Alert,
            24,
        );
        assert_eq!(r.wire_type, ContentType::ApplicationData);
        assert_eq!(r.inner_type, ContentType::Alert);
        assert!(r.looks_like_application_data());
    }

    #[test]
    fn tls13_finished_disguised() {
        let r = RecordEvent::encrypted(
            Direction::ClientToServer,
            TlsVersion::V1_3,
            ContentType::Handshake,
            40,
        );
        assert!(r.looks_like_application_data());
    }

    #[test]
    fn plaintext_alert_observable() {
        let r = RecordEvent::plaintext_alert(
            Direction::ServerToClient,
            AlertLevel::Fatal,
            AlertDescription::UnknownCa,
        );
        assert_eq!(
            r.plaintext_alert,
            Some((AlertLevel::Fatal, AlertDescription::UnknownCa))
        );
        assert_eq!(r.payload_len, 2);
    }
}
