//! Record-level TLS simulator.
//!
//! The paper's dynamic pinning detection (§4.2.2) never decrypts anything —
//! it classifies connections by *observable wire behaviour*: which records
//! flow in which direction, their content types and lengths, TLS alerts,
//! and TCP RST/FIN teardown. This crate simulates TLS at exactly that
//! altitude:
//!
//! * [`version`] / [`cipher`] — protocol versions 1.0–1.3 and cipher suites,
//!   including the weak ones (DES, 3DES, RC4, EXPORT) whose advertisement
//!   Table 8 measures.
//! * [`record`] — the record layer, including TLS 1.3's middlebox disguise:
//!   every encrypted record (data, alert, or handshake) is written to the
//!   wire as `ApplicationData`, which is what forces the paper's length
//!   heuristic.
//! * [`alert`] — alert levels/descriptions, and the fixed on-wire length of
//!   an encrypted alert.
//! * [`handshake`] — ClientHello (SNI, offered versions/ciphers),
//!   ServerHello, Certificate, Finished.
//! * [`verify`] — pluggable certificate verification: system validation,
//!   pin enforcement, or both stacked (how real apps compose them).
//! * [`library`] — identities of the TLS stacks apps link (OkHttp,
//!   Conscrypt, NSURLSession, …): how they signal failure on the wire and
//!   whether Frida-style instrumentation can hook them (§4.3).
//! * [`conn`] — the handshake driver that connects a client configuration
//!   to a server endpoint and emits a [`transcript::ConnectionTranscript`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod cipher;
pub mod conn;
pub mod handshake;
pub mod library;
pub mod record;
pub mod transcript;
pub mod verify;
pub mod version;

pub use alert::{AlertDescription, AlertLevel, ENCRYPTED_ALERT_WIRE_LEN};
pub use cipher::CipherSuite;
pub use conn::{establish, ClientConfig, HandshakeError, HandshakeOutcome, ServerEndpoint};
pub use library::{FailureSignal, TlsLibrary};
pub use record::{ContentType, Direction, RecordEvent, TcpEvent, WireEvent};
pub use transcript::ConnectionTranscript;
pub use verify::{CertPolicy, VerifyDecision};
pub use version::TlsVersion;
