//! Client-side certificate policy: system validation and/or pin enforcement.
//!
//! Real apps compose these in every combination the paper discusses:
//! system validation only (the default), system + pins (correct pinning),
//! pins only (broken — §5.3.4 looked for this and found none), and — after
//! Frida instrumentation — nothing at all.

use pinning_pki::pin::PinSet;
use pinning_pki::store::RootStore;
use pinning_pki::time::SimTime;
use pinning_pki::validate::{validate_chain_cached, RevocationList, ValidationOptions};
use pinning_pki::Certificate;
use pinning_pki::ValidationError;

/// What an app's certificate-evaluation code decides.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyDecision {
    /// Chain accepted.
    Accept,
    /// Rejected by standard validation.
    RejectSystem(ValidationError),
    /// Chain validated but no pin matched — the pinning signal.
    RejectPin,
}

impl VerifyDecision {
    /// Whether the decision accepts the connection.
    pub fn is_accept(&self) -> bool {
        matches!(self, VerifyDecision::Accept)
    }
}

/// An app's certificate policy for one destination.
#[derive(Debug, Clone, PartialEq)]
pub struct CertPolicy {
    /// Run standard chain validation against the device root store.
    /// Virtually always true; §5.3.4 found no app relying on pins alone.
    pub system_validation: bool,
    /// Which standard checks are enabled (some apps disable hostname
    /// verification — the Stone et al. bug class).
    pub validation_options: ValidationOptions,
    /// Pins to enforce, if the app pins this destination.
    pub pins: Option<PinSet>,
}

impl CertPolicy {
    /// The platform default: full system validation, no pins.
    pub fn system_default() -> Self {
        CertPolicy {
            system_validation: true,
            validation_options: ValidationOptions::default(),
            pins: None,
        }
    }

    /// Correct pinning: system validation plus a pin set.
    pub fn pinned(pins: PinSet) -> Self {
        CertPolicy {
            system_validation: true,
            validation_options: ValidationOptions::default(),
            pins: Some(pins),
        }
    }

    /// Whether the policy pins.
    pub fn is_pinning(&self) -> bool {
        self.pins.as_ref().is_some_and(|p| !p.is_empty())
    }

    /// Evaluates a presented chain.
    ///
    /// Order mirrors real stacks: standard validation first (when enabled),
    /// then pin matching. A policy with pins but no matching certificate
    /// rejects even if the chain is otherwise perfectly valid — that is the
    /// defining behaviour of pinning.
    pub fn evaluate(
        &self,
        chain: &[Certificate],
        hostname: &str,
        now: SimTime,
        store: &RootStore,
        crl: &RevocationList,
    ) -> VerifyDecision {
        if self.system_validation {
            // Handshakes re-present the same few chains thousands of times
            // per study run; the memoized verdict is byte-identical.
            if let Err(e) =
                validate_chain_cached(chain, store, hostname, now, crl, &self.validation_options)
            {
                return VerifyDecision::RejectSystem(e);
            }
        }
        if let Some(pins) = &self.pins {
            if !pins.is_empty() && !pins.matches_chain(chain) {
                return VerifyDecision::RejectPin;
            }
        }
        VerifyDecision::Accept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pinning_crypto::sig::KeyPair;
    use pinning_crypto::SplitMix64;
    use pinning_pki::authority::CertificateAuthority;
    use pinning_pki::name::DistinguishedName;
    use pinning_pki::pin::{Pin, SpkiPin};
    use pinning_pki::time::{Validity, YEAR};

    struct World {
        store: RootStore,
        chain: Vec<Certificate>,
        mitm_chain: Vec<Certificate>,
        now: SimTime,
    }

    fn world() -> World {
        let mut rng = SplitMix64::new(0xfeed);
        let mut root = CertificateAuthority::new_root(
            DistinguishedName::new("Root", "Sim", "US"),
            &mut rng,
            SimTime(0),
        );
        let key = KeyPair::generate(&mut rng);
        let leaf = root.issue_leaf(
            &["bank.com".to_string()],
            "Bank",
            &key,
            Validity::starting(SimTime(0), YEAR),
        );
        let chain = vec![leaf, root.cert.clone()];

        // MITM CA *installed in the device store* (the paper's test setup).
        let mut mitm = CertificateAuthority::new_root(
            DistinguishedName::new("mitmproxy", "mitmproxy", "US"),
            &mut rng,
            SimTime(0),
        );
        let mitm_key = KeyPair::generate(&mut rng);
        let forged = mitm.issue_leaf(
            &["bank.com".to_string()],
            "Bank",
            &mitm_key,
            Validity::starting(SimTime(0), YEAR),
        );
        let mitm_chain = vec![forged, mitm.cert.clone()];

        let mut store = RootStore::new("device");
        store.add(root.cert.clone());
        store.add(mitm.cert.clone());
        World {
            store,
            chain,
            mitm_chain,
            now: SimTime(100),
        }
    }

    #[test]
    fn default_policy_accepts_valid_chain() {
        let w = world();
        let p = CertPolicy::system_default();
        assert!(p
            .evaluate(
                &w.chain,
                "bank.com",
                w.now,
                &w.store,
                &RevocationList::empty()
            )
            .is_accept());
    }

    #[test]
    fn default_policy_accepts_mitm_with_installed_ca() {
        // This is exactly why pinning matters: with the proxy CA installed,
        // an unpinned app accepts the forged chain.
        let w = world();
        let p = CertPolicy::system_default();
        assert!(p
            .evaluate(
                &w.mitm_chain,
                "bank.com",
                w.now,
                &w.store,
                &RevocationList::empty()
            )
            .is_accept());
    }

    #[test]
    fn pinned_policy_rejects_mitm_even_with_installed_ca() {
        let w = world();
        let pin = SpkiPin::sha256_of(&w.chain[1]); // pin the real root
        let p = CertPolicy::pinned(PinSet::from_pins(vec![Pin::Spki(pin)]));
        assert_eq!(
            p.evaluate(
                &w.mitm_chain,
                "bank.com",
                w.now,
                &w.store,
                &RevocationList::empty()
            ),
            VerifyDecision::RejectPin
        );
        // ... while still accepting the genuine chain.
        assert!(p
            .evaluate(
                &w.chain,
                "bank.com",
                w.now,
                &w.store,
                &RevocationList::empty()
            )
            .is_accept());
    }

    #[test]
    fn pinning_still_runs_standard_validation() {
        let w = world();
        let pin = SpkiPin::sha256_of(&w.chain[1]);
        let p = CertPolicy::pinned(PinSet::from_pins(vec![Pin::Spki(pin)]));
        // Hostname mismatch must still be caught (§5.3.4).
        let d = p.evaluate(
            &w.chain,
            "evil.com",
            w.now,
            &w.store,
            &RevocationList::empty(),
        );
        assert!(matches!(
            d,
            VerifyDecision::RejectSystem(ValidationError::HostnameMismatch { .. })
        ));
    }

    #[test]
    fn unknown_ca_rejected_without_install() {
        let w = world();
        let mut bare = RootStore::new("factory");
        bare.add(w.chain[1].clone());
        let p = CertPolicy::system_default();
        let d = p.evaluate(
            &w.mitm_chain,
            "bank.com",
            w.now,
            &bare,
            &RevocationList::empty(),
        );
        assert!(matches!(
            d,
            VerifyDecision::RejectSystem(ValidationError::UnknownRoot { .. })
        ));
    }

    #[test]
    fn empty_pinset_does_not_pin() {
        let p = CertPolicy::pinned(PinSet::new());
        assert!(!p.is_pinning());
    }
}
