//! TLS alerts.

/// Alert severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlertLevel {
    /// Warning (connection may continue).
    Warning,
    /// Fatal (connection is torn down).
    Fatal,
}

/// Alert description codes relevant to the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlertDescription {
    /// Orderly closure.
    CloseNotify,
    /// Generic handshake failure (e.g. no common cipher).
    HandshakeFailure,
    /// Certificate was corrupt or otherwise bad — the classic pinning
    /// failure signal from OkHttp-style stacks.
    BadCertificate,
    /// Certificate could not be validated for an unspecified reason.
    CertificateUnknown,
    /// Chain anchored at an unknown CA — what a system validator emits when
    /// the MITM proxy's CA is not installed.
    UnknownCa,
    /// No common protocol version — a *non-pinning* failure that naive alert
    /// counting would misattribute (§4.2.2's confounder).
    ProtocolVersion,
    /// Unrecognized SNI name.
    UnrecognizedName,
}

impl AlertDescription {
    /// Numeric code (per RFC 8446 where applicable).
    pub fn code(self) -> u8 {
        match self {
            AlertDescription::CloseNotify => 0,
            AlertDescription::HandshakeFailure => 40,
            AlertDescription::BadCertificate => 42,
            AlertDescription::CertificateUnknown => 46,
            AlertDescription::UnknownCa => 48,
            AlertDescription::ProtocolVersion => 70,
            AlertDescription::UnrecognizedName => 112,
        }
    }
}

/// On-wire length (bytes) of a *plaintext* alert record payload: level (1) +
/// description (1).
pub const PLAINTEXT_ALERT_LEN: usize = 2;

/// On-wire length (bytes) of an *encrypted* alert record payload under
/// TLS 1.3: 2 alert bytes + 1 inner content-type byte + 16-byte AEAD tag +
/// 5-byte record header = 24 bytes of ciphertext payload, 19 without header.
///
/// The exact constant matters less than its *fixedness*: the paper's TLS 1.3
/// used-connection heuristic keys on "second encrypted client record has the
/// same length as an encrypted alert" (§4.2.2), so every encrypted alert in
/// the simulation has exactly this payload length.
pub const ENCRYPTED_ALERT_WIRE_LEN: usize = 24;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_rfc() {
        assert_eq!(AlertDescription::CloseNotify.code(), 0);
        assert_eq!(AlertDescription::BadCertificate.code(), 42);
        assert_eq!(AlertDescription::UnknownCa.code(), 48);
        assert_eq!(AlertDescription::ProtocolVersion.code(), 70);
    }

    #[test]
    fn encrypted_alert_longer_than_plaintext() {
        // Compare through variables so the compiler can't fold the check
        // away if someone edits one constant.
        let enc = ENCRYPTED_ALERT_WIRE_LEN;
        let plain = PLAINTEXT_ALERT_LEN;
        assert!(enc > plain, "{enc} vs {plain}");
    }
}
