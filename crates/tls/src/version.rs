//! TLS protocol versions.

/// A TLS protocol version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TlsVersion {
    /// TLS 1.0 (legacy).
    V1_0,
    /// TLS 1.1 (legacy).
    V1_1,
    /// TLS 1.2.
    V1_2,
    /// TLS 1.3 — encrypted records are disguised as application data.
    V1_3,
}

impl TlsVersion {
    /// All versions, oldest first.
    pub const ALL: [TlsVersion; 4] = [
        TlsVersion::V1_0,
        TlsVersion::V1_1,
        TlsVersion::V1_2,
        TlsVersion::V1_3,
    ];

    /// Whether encrypted records on this version hide their content type
    /// (the TLS 1.3 middlebox-compatibility disguise, §4.2.2).
    pub fn disguises_encrypted_records(self) -> bool {
        self == TlsVersion::V1_3
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            TlsVersion::V1_0 => "TLSv1.0",
            TlsVersion::V1_1 => "TLSv1.1",
            TlsVersion::V1_2 => "TLSv1.2",
            TlsVersion::V1_3 => "TLSv1.3",
        }
    }
}

impl core::fmt::Display for TlsVersion {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Picks the highest version offered by both sides, if any.
pub fn negotiate(
    client_offers: &[TlsVersion],
    server_supports: &[TlsVersion],
) -> Option<TlsVersion> {
    client_offers
        .iter()
        .filter(|v| server_supports.contains(v))
        .max()
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering() {
        assert!(TlsVersion::V1_0 < TlsVersion::V1_2);
        assert!(TlsVersion::V1_2 < TlsVersion::V1_3);
    }

    #[test]
    fn negotiate_picks_highest_common() {
        let client = [TlsVersion::V1_2, TlsVersion::V1_3];
        let server = [TlsVersion::V1_0, TlsVersion::V1_2];
        assert_eq!(negotiate(&client, &server), Some(TlsVersion::V1_2));
    }

    #[test]
    fn negotiate_none_when_disjoint() {
        assert_eq!(negotiate(&[TlsVersion::V1_3], &[TlsVersion::V1_0]), None);
    }

    #[test]
    fn only_tls13_disguises() {
        for v in TlsVersion::ALL {
            assert_eq!(v.disguises_encrypted_records(), v == TlsVersion::V1_3);
        }
    }

    #[test]
    fn names() {
        assert_eq!(TlsVersion::V1_3.to_string(), "TLSv1.3");
    }
}
