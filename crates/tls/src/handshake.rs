//! Handshake messages (the fields the methodology observes).

use crate::cipher::CipherSuite;
use crate::version::TlsVersion;

/// A ClientHello as observed on the wire (always plaintext).
///
/// The paper reports that 99% of captured TLS traffic carried a non-empty
/// SNI (§4.2.2), which is what lets flows be keyed by destination hostname.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHello {
    /// Server Name Indication, if the client sends one.
    pub sni: Option<String>,
    /// Offered protocol versions (supported_versions extension / legacy
    /// version field).
    pub offered_versions: Vec<TlsVersion>,
    /// Offered cipher suites, in client preference order.
    pub offered_ciphers: Vec<CipherSuite>,
}

impl ClientHello {
    /// Whether any offered suite is on the bad-cipher list (Table 8's
    /// per-connection predicate).
    pub fn advertises_weak_cipher(&self) -> bool {
        self.offered_ciphers.iter().any(|c| c.is_weak())
    }

    /// Approximate wire size of the ClientHello payload in bytes.
    pub fn wire_len(&self) -> usize {
        let base = 180; // random, session id, extensions scaffolding
        base + self.offered_ciphers.len() * 2
            + self.sni.as_ref().map_or(0, |s| s.len() + 9)
            + self.offered_versions.len() * 2
    }
}

/// A ServerHello as observed on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerHello {
    /// Negotiated version.
    pub version: TlsVersion,
    /// Negotiated cipher suite.
    pub cipher: CipherSuite,
}

impl ServerHello {
    /// Approximate wire size in bytes.
    pub fn wire_len(&self) -> usize {
        90
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_advertisement() {
        let hello = ClientHello {
            sni: Some("api.example.com".into()),
            offered_versions: vec![TlsVersion::V1_2, TlsVersion::V1_3],
            offered_ciphers: CipherSuite::legacy_client_list(),
        };
        assert!(hello.advertises_weak_cipher());
        let modern = ClientHello {
            offered_ciphers: CipherSuite::modern_client_list(),
            ..hello
        };
        assert!(!modern.advertises_weak_cipher());
    }

    #[test]
    fn wire_len_grows_with_content() {
        let small = ClientHello {
            sni: None,
            offered_versions: vec![TlsVersion::V1_2],
            offered_ciphers: vec![CipherSuite::TLS_AES_128_GCM_SHA256],
        };
        let big = ClientHello {
            sni: Some("a-very-long-hostname.cdn.example.com".into()),
            offered_versions: vec![TlsVersion::V1_2, TlsVersion::V1_3],
            offered_ciphers: CipherSuite::legacy_client_list(),
        };
        assert!(big.wire_len() > small.wire_len());
    }
}
