//! Connection transcripts: the pcap-equivalent unit of capture.

use crate::cipher::CipherSuite;
use crate::record::{ContentType, Direction, RecordEvent, TcpEvent, WireEvent};
use crate::version::TlsVersion;

/// Everything a passive capture point records about one TCP+TLS connection.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConnectionTranscript {
    /// SNI from the ClientHello (None if the client omitted it — ~1% of
    /// connections in the paper's captures).
    pub sni: Option<String>,
    /// Versions offered in the ClientHello.
    pub offered_versions: Vec<TlsVersion>,
    /// Cipher suites offered in the ClientHello.
    pub offered_ciphers: Vec<CipherSuite>,
    /// Negotiated (version, cipher), if the handshake got that far.
    pub negotiated: Option<(TlsVersion, CipherSuite)>,
    /// Ordered wire events.
    pub events: Vec<WireEvent>,
}

impl ConnectionTranscript {
    /// Creates an empty transcript.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a TCP event.
    pub fn push_tcp(&mut self, ev: TcpEvent) {
        self.events.push(WireEvent::Tcp(ev));
    }

    /// Appends a TLS record.
    pub fn push_record(&mut self, rec: RecordEvent) {
        self.events.push(WireEvent::Record(rec));
    }

    /// All TLS records in order.
    pub fn records(&self) -> impl Iterator<Item = &RecordEvent> {
        self.events.iter().filter_map(|e| match e {
            WireEvent::Record(r) => Some(r),
            WireEvent::Tcp(_) => None,
        })
    }

    /// Client→server records that a passive observer would classify as
    /// "Encrypted Application Data" (i.e. wire type ApplicationData and
    /// encrypted). This is the paper's raw observable for used-connection
    /// detection.
    pub fn client_encrypted_appdata(&self) -> Vec<&RecordEvent> {
        self.records()
            .filter(|r| {
                r.direction == Direction::ClientToServer
                    && r.encrypted
                    && r.wire_type == ContentType::ApplicationData
            })
            .collect()
    }

    /// Whether the client aborted with a TCP RST.
    pub fn client_rst(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e,
                WireEvent::Tcp(TcpEvent::Rst {
                    from: Direction::ClientToServer
                })
            )
        })
    }

    /// Whether the client closed with a FIN.
    pub fn client_fin(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e,
                WireEvent::Tcp(TcpEvent::Fin {
                    from: Direction::ClientToServer
                })
            )
        })
    }

    /// Whether any *visible* (plaintext) fatal alert was seen, and from whom.
    pub fn plaintext_alerts(&self) -> Vec<&RecordEvent> {
        self.records()
            .filter(|r| r.plaintext_alert.is_some())
            .collect()
    }

    /// Whether the TCP connection was established at all.
    pub fn tcp_established(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, WireEvent::Tcp(TcpEvent::Established)))
    }

    /// Whether the TLS handshake completed (a ServerHello was answered and a
    /// cipher negotiated, and no pre-Finished abort happened). Approximated
    /// by `negotiated.is_some()` plus the presence of a client Finished —
    /// for TLS 1.3 Finished is disguised, so we accept any client encrypted
    /// record as evidence the client keyed up.
    pub fn handshake_reached_encryption(&self) -> bool {
        self.negotiated.is_some()
            && self
                .records()
                .any(|r| r.direction == Direction::ClientToServer && r.encrypted)
    }

    /// Total bytes in client→server application-data-looking records.
    pub fn client_appdata_bytes(&self) -> usize {
        self.client_encrypted_appdata()
            .iter()
            .map(|r| r.payload_len)
            .sum()
    }

    /// Renders a compact tcpdump-style dump (for examples and debugging).
    pub fn dump(&self) -> String {
        use core::fmt::Write as _;
        let mut out = String::new();
        let sni = self.sni.as_deref().unwrap_or("<no-sni>");
        let _ = writeln!(out, "connection to {sni}");
        if let Some((v, c)) = self.negotiated {
            let _ = writeln!(out, "  negotiated {v} {c}");
        }
        for ev in &self.events {
            match ev {
                WireEvent::Tcp(t) => {
                    let _ = writeln!(out, "  tcp {t:?}");
                }
                WireEvent::Record(r) => {
                    let dir = match r.direction {
                        Direction::ClientToServer => ">",
                        Direction::ServerToClient => "<",
                    };
                    let enc = if r.encrypted { "enc" } else { "plain" };
                    let _ = writeln!(
                        out,
                        "  {dir} {:?} ({enc}, {} bytes)",
                        r.wire_type, r.payload_len
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::{AlertDescription, AlertLevel};

    fn base() -> ConnectionTranscript {
        let mut t = ConnectionTranscript {
            sni: Some("x.com".into()),
            negotiated: Some((TlsVersion::V1_3, CipherSuite::TLS_AES_128_GCM_SHA256)),
            ..Default::default()
        };
        t.push_tcp(TcpEvent::Established);
        t
    }

    #[test]
    fn appdata_counting_honours_wire_type_only() {
        let mut t = base();
        // TLS 1.3 Finished — disguised as app data on the wire.
        t.push_record(RecordEvent::encrypted(
            Direction::ClientToServer,
            TlsVersion::V1_3,
            ContentType::Handshake,
            40,
        ));
        // Real data.
        t.push_record(RecordEvent::encrypted(
            Direction::ClientToServer,
            TlsVersion::V1_3,
            ContentType::ApplicationData,
            512,
        ));
        assert_eq!(t.client_encrypted_appdata().len(), 2);
        assert_eq!(t.client_appdata_bytes(), 552);
    }

    #[test]
    fn tls12_appdata_not_confused_with_handshake() {
        let mut t = base();
        t.negotiated = Some((
            TlsVersion::V1_2,
            CipherSuite::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
        ));
        t.push_record(RecordEvent::encrypted(
            Direction::ClientToServer,
            TlsVersion::V1_2,
            ContentType::Handshake,
            40,
        ));
        assert!(t.client_encrypted_appdata().is_empty());
        t.push_record(RecordEvent::encrypted(
            Direction::ClientToServer,
            TlsVersion::V1_2,
            ContentType::ApplicationData,
            100,
        ));
        assert_eq!(t.client_encrypted_appdata().len(), 1);
    }

    #[test]
    fn tcp_flags() {
        let mut t = base();
        assert!(t.tcp_established());
        assert!(!t.client_rst());
        t.push_tcp(TcpEvent::Rst {
            from: Direction::ClientToServer,
        });
        assert!(t.client_rst());
        t.push_tcp(TcpEvent::Fin {
            from: Direction::ClientToServer,
        });
        assert!(t.client_fin());
    }

    #[test]
    fn alerts_visible_only_when_plaintext() {
        let mut t = base();
        t.push_record(RecordEvent::plaintext_alert(
            Direction::ClientToServer,
            AlertLevel::Fatal,
            AlertDescription::UnknownCa,
        ));
        assert_eq!(t.plaintext_alerts().len(), 1);
        t.push_record(RecordEvent::encrypted(
            Direction::ClientToServer,
            TlsVersion::V1_3,
            ContentType::Alert,
            crate::alert::ENCRYPTED_ALERT_WIRE_LEN,
        ));
        assert_eq!(
            t.plaintext_alerts().len(),
            1,
            "encrypted alert must stay invisible"
        );
    }

    #[test]
    fn dump_contains_sni() {
        let t = base();
        assert!(t.dump().contains("x.com"));
    }
}
