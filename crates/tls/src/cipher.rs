//! Cipher suites, including the deliberately weak ones Table 8 measures.
//!
//! The paper flags connections that *advertise support for* bad
//! ciphersuites — DES, 3DES, RC4, or EXPORT-grade — in the ClientHello.
//! Advertising is a client-side property, so weakness is measured on the
//! offered list, not on what was ultimately negotiated.

use crate::version::TlsVersion;

/// A TLS cipher suite (a representative subset of the IANA registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(non_camel_case_types)]
pub enum CipherSuite {
    // --- TLS 1.3 suites ---
    /// AES-128-GCM (TLS 1.3).
    TLS_AES_128_GCM_SHA256,
    /// AES-256-GCM (TLS 1.3).
    TLS_AES_256_GCM_SHA384,
    /// ChaCha20-Poly1305 (TLS 1.3).
    TLS_CHACHA20_POLY1305_SHA256,
    // --- Modern TLS 1.2 suites ---
    /// ECDHE-RSA AES-128-GCM.
    TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
    /// ECDHE-RSA AES-256-GCM.
    TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
    /// ECDHE-ECDSA AES-128-GCM.
    TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256,
    /// ECDHE-RSA ChaCha20-Poly1305.
    TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256,
    /// RSA AES-128-CBC (legacy but not "bad" by the paper's list).
    TLS_RSA_WITH_AES_128_CBC_SHA,
    /// RSA AES-256-CBC (legacy but not "bad" by the paper's list).
    TLS_RSA_WITH_AES_256_CBC_SHA,
    // --- Weak suites (the paper's "bad ciphers": DES, 3DES, RC4, EXPORT) ---
    /// Single DES — weak.
    TLS_RSA_WITH_DES_CBC_SHA,
    /// Triple DES — weak (Sweet32).
    TLS_RSA_WITH_3DES_EDE_CBC_SHA,
    /// RC4 — weak (RFC 7465 prohibits it).
    TLS_RSA_WITH_RC4_128_SHA,
    /// RC4 with MD5 — weak twice over.
    TLS_RSA_WITH_RC4_128_MD5,
    /// EXPORT-grade 40-bit DES — weak (FREAK-era).
    TLS_RSA_EXPORT_WITH_DES40_CBC_SHA,
    /// EXPORT-grade RC4-40 — weak.
    TLS_RSA_EXPORT_WITH_RC4_40_MD5,
}

impl CipherSuite {
    /// Whether the suite is on the paper's bad-cipher list
    /// (DES, 3DES, RC4, or EXPORT).
    pub fn is_weak(self) -> bool {
        matches!(
            self,
            CipherSuite::TLS_RSA_WITH_DES_CBC_SHA
                | CipherSuite::TLS_RSA_WITH_3DES_EDE_CBC_SHA
                | CipherSuite::TLS_RSA_WITH_RC4_128_SHA
                | CipherSuite::TLS_RSA_WITH_RC4_128_MD5
                | CipherSuite::TLS_RSA_EXPORT_WITH_DES40_CBC_SHA
                | CipherSuite::TLS_RSA_EXPORT_WITH_RC4_40_MD5
        )
    }

    /// Whether the suite can be negotiated under `version`.
    pub fn valid_for(self, version: TlsVersion) -> bool {
        match self {
            CipherSuite::TLS_AES_128_GCM_SHA256
            | CipherSuite::TLS_AES_256_GCM_SHA384
            | CipherSuite::TLS_CHACHA20_POLY1305_SHA256 => version == TlsVersion::V1_3,
            _ => version < TlsVersion::V1_3,
        }
    }

    /// IANA-style name.
    pub fn name(self) -> &'static str {
        match self {
            CipherSuite::TLS_AES_128_GCM_SHA256 => "TLS_AES_128_GCM_SHA256",
            CipherSuite::TLS_AES_256_GCM_SHA384 => "TLS_AES_256_GCM_SHA384",
            CipherSuite::TLS_CHACHA20_POLY1305_SHA256 => "TLS_CHACHA20_POLY1305_SHA256",
            CipherSuite::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256 => {
                "TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256"
            }
            CipherSuite::TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384 => {
                "TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384"
            }
            CipherSuite::TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256 => {
                "TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256"
            }
            CipherSuite::TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256 => {
                "TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256"
            }
            CipherSuite::TLS_RSA_WITH_AES_128_CBC_SHA => "TLS_RSA_WITH_AES_128_CBC_SHA",
            CipherSuite::TLS_RSA_WITH_AES_256_CBC_SHA => "TLS_RSA_WITH_AES_256_CBC_SHA",
            CipherSuite::TLS_RSA_WITH_DES_CBC_SHA => "TLS_RSA_WITH_DES_CBC_SHA",
            CipherSuite::TLS_RSA_WITH_3DES_EDE_CBC_SHA => "TLS_RSA_WITH_3DES_EDE_CBC_SHA",
            CipherSuite::TLS_RSA_WITH_RC4_128_SHA => "TLS_RSA_WITH_RC4_128_SHA",
            CipherSuite::TLS_RSA_WITH_RC4_128_MD5 => "TLS_RSA_WITH_RC4_128_MD5",
            CipherSuite::TLS_RSA_EXPORT_WITH_DES40_CBC_SHA => "TLS_RSA_EXPORT_WITH_DES40_CBC_SHA",
            CipherSuite::TLS_RSA_EXPORT_WITH_RC4_40_MD5 => "TLS_RSA_EXPORT_WITH_RC4_40_MD5",
        }
    }

    /// A modern client offer list (no weak suites) covering 1.2 + 1.3.
    pub fn modern_client_list() -> Vec<CipherSuite> {
        vec![
            CipherSuite::TLS_AES_128_GCM_SHA256,
            CipherSuite::TLS_AES_256_GCM_SHA384,
            CipherSuite::TLS_CHACHA20_POLY1305_SHA256,
            CipherSuite::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256,
            CipherSuite::TLS_ECDHE_RSA_WITH_AES_256_GCM_SHA384,
            CipherSuite::TLS_ECDHE_ECDSA_WITH_AES_128_GCM_SHA256,
        ]
    }

    /// A permissive legacy offer list that *advertises* weak suites — the
    /// behaviour Table 8 counts against apps.
    pub fn legacy_client_list() -> Vec<CipherSuite> {
        let mut list = Self::modern_client_list();
        list.extend([
            CipherSuite::TLS_RSA_WITH_AES_128_CBC_SHA,
            CipherSuite::TLS_RSA_WITH_3DES_EDE_CBC_SHA,
            CipherSuite::TLS_RSA_WITH_RC4_128_SHA,
            CipherSuite::TLS_RSA_EXPORT_WITH_DES40_CBC_SHA,
        ]);
        list
    }

    /// A typical server support list (modern suites plus CBC fallbacks; real
    /// servers rarely *negotiate* weak suites even when clients offer them).
    pub fn typical_server_list() -> Vec<CipherSuite> {
        let mut list = Self::modern_client_list();
        list.extend([
            CipherSuite::TLS_ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256,
            CipherSuite::TLS_RSA_WITH_AES_128_CBC_SHA,
            CipherSuite::TLS_RSA_WITH_AES_256_CBC_SHA,
        ]);
        list
    }
}

impl core::fmt::Display for CipherSuite {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Server-side suite selection: first suite in the *server's* preference
/// order that the client offered and that fits the negotiated version.
pub fn select_cipher(
    client_offers: &[CipherSuite],
    server_prefs: &[CipherSuite],
    version: TlsVersion,
) -> Option<CipherSuite> {
    server_prefs
        .iter()
        .find(|s| s.valid_for(version) && client_offers.contains(s))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_classification() {
        assert!(CipherSuite::TLS_RSA_WITH_RC4_128_SHA.is_weak());
        assert!(CipherSuite::TLS_RSA_WITH_3DES_EDE_CBC_SHA.is_weak());
        assert!(CipherSuite::TLS_RSA_EXPORT_WITH_RC4_40_MD5.is_weak());
        assert!(!CipherSuite::TLS_AES_128_GCM_SHA256.is_weak());
        assert!(!CipherSuite::TLS_RSA_WITH_AES_128_CBC_SHA.is_weak());
    }

    #[test]
    fn modern_list_has_no_weak() {
        assert!(CipherSuite::modern_client_list()
            .iter()
            .all(|c| !c.is_weak()));
    }

    #[test]
    fn legacy_list_advertises_weak() {
        assert!(CipherSuite::legacy_client_list()
            .iter()
            .any(|c| c.is_weak()));
    }

    #[test]
    fn version_gating() {
        assert!(CipherSuite::TLS_AES_128_GCM_SHA256.valid_for(TlsVersion::V1_3));
        assert!(!CipherSuite::TLS_AES_128_GCM_SHA256.valid_for(TlsVersion::V1_2));
        assert!(CipherSuite::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256.valid_for(TlsVersion::V1_2));
        assert!(!CipherSuite::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256.valid_for(TlsVersion::V1_3));
    }

    #[test]
    fn selection_respects_server_preference() {
        let client = CipherSuite::legacy_client_list();
        let server = CipherSuite::typical_server_list();
        let picked = select_cipher(&client, &server, TlsVersion::V1_2).unwrap();
        assert_eq!(picked, CipherSuite::TLS_ECDHE_RSA_WITH_AES_128_GCM_SHA256);
        assert!(!picked.is_weak(), "servers never pick a weak suite here");
    }

    #[test]
    fn selection_fails_when_no_overlap() {
        let client = [CipherSuite::TLS_RSA_WITH_RC4_128_MD5];
        let server = CipherSuite::typical_server_list();
        assert_eq!(select_cipher(&client, &server, TlsVersion::V1_2), None);
    }

    #[test]
    fn tls13_selection_picks_13_suite() {
        let client = CipherSuite::modern_client_list();
        let server = CipherSuite::typical_server_list();
        let picked = select_cipher(&client, &server, TlsVersion::V1_3).unwrap();
        assert!(picked.valid_for(TlsVersion::V1_3));
    }
}
