(function() {
    const implementors = Object.fromEntries([["pinning_pki",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Add.html\" title=\"trait core::ops::arith::Add\">Add</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.u64.html\">u64</a>&gt; for <a class=\"struct\" href=\"pinning_pki/time/struct.SimTime.html\" title=\"struct pinning_pki::time::SimTime\">SimTime</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[394]}