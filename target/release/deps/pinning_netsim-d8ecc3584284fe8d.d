/root/repo/target/release/deps/pinning_netsim-d8ecc3584284fe8d.d: crates/netsim/src/lib.rs crates/netsim/src/device.rs crates/netsim/src/faults.rs crates/netsim/src/flow.rs crates/netsim/src/network.rs crates/netsim/src/proxy.rs crates/netsim/src/server.rs crates/netsim/src/simcap.rs

/root/repo/target/release/deps/libpinning_netsim-d8ecc3584284fe8d.rlib: crates/netsim/src/lib.rs crates/netsim/src/device.rs crates/netsim/src/faults.rs crates/netsim/src/flow.rs crates/netsim/src/network.rs crates/netsim/src/proxy.rs crates/netsim/src/server.rs crates/netsim/src/simcap.rs

/root/repo/target/release/deps/libpinning_netsim-d8ecc3584284fe8d.rmeta: crates/netsim/src/lib.rs crates/netsim/src/device.rs crates/netsim/src/faults.rs crates/netsim/src/flow.rs crates/netsim/src/network.rs crates/netsim/src/proxy.rs crates/netsim/src/server.rs crates/netsim/src/simcap.rs

crates/netsim/src/lib.rs:
crates/netsim/src/device.rs:
crates/netsim/src/faults.rs:
crates/netsim/src/flow.rs:
crates/netsim/src/network.rs:
crates/netsim/src/proxy.rs:
crates/netsim/src/server.rs:
crates/netsim/src/simcap.rs:
