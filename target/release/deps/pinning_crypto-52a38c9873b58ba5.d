/root/repo/target/release/deps/pinning_crypto-52a38c9873b58ba5.d: crates/crypto/src/lib.rs crates/crypto/src/base64.rs crates/crypto/src/hex.rs crates/crypto/src/hmac.rs crates/crypto/src/rng.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs crates/crypto/src/sig.rs

/root/repo/target/release/deps/libpinning_crypto-52a38c9873b58ba5.rlib: crates/crypto/src/lib.rs crates/crypto/src/base64.rs crates/crypto/src/hex.rs crates/crypto/src/hmac.rs crates/crypto/src/rng.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs crates/crypto/src/sig.rs

/root/repo/target/release/deps/libpinning_crypto-52a38c9873b58ba5.rmeta: crates/crypto/src/lib.rs crates/crypto/src/base64.rs crates/crypto/src/hex.rs crates/crypto/src/hmac.rs crates/crypto/src/rng.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs crates/crypto/src/sig.rs

crates/crypto/src/lib.rs:
crates/crypto/src/base64.rs:
crates/crypto/src/hex.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/rng.rs:
crates/crypto/src/sha1.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/sig.rs:
