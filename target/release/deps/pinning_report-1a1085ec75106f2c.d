/root/repo/target/release/deps/pinning_report-1a1085ec75106f2c.d: crates/report/src/lib.rs crates/report/src/export.rs crates/report/src/figures.rs crates/report/src/tables.rs crates/report/src/text.rs

/root/repo/target/release/deps/libpinning_report-1a1085ec75106f2c.rlib: crates/report/src/lib.rs crates/report/src/export.rs crates/report/src/figures.rs crates/report/src/tables.rs crates/report/src/text.rs

/root/repo/target/release/deps/libpinning_report-1a1085ec75106f2c.rmeta: crates/report/src/lib.rs crates/report/src/export.rs crates/report/src/figures.rs crates/report/src/tables.rs crates/report/src/text.rs

crates/report/src/lib.rs:
crates/report/src/export.rs:
crates/report/src/figures.rs:
crates/report/src/tables.rs:
crates/report/src/text.rs:
