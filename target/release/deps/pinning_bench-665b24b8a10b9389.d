/root/repo/target/release/deps/pinning_bench-665b24b8a10b9389.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpinning_bench-665b24b8a10b9389.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libpinning_bench-665b24b8a10b9389.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
