/root/repo/target/release/deps/app_tls_pinning-1c8c8ca430a96a93.d: src/lib.rs

/root/repo/target/release/deps/libapp_tls_pinning-1c8c8ca430a96a93.rlib: src/lib.rs

/root/repo/target/release/deps/libapp_tls_pinning-1c8c8ca430a96a93.rmeta: src/lib.rs

src/lib.rs:
