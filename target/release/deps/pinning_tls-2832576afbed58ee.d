/root/repo/target/release/deps/pinning_tls-2832576afbed58ee.d: crates/tls/src/lib.rs crates/tls/src/alert.rs crates/tls/src/cipher.rs crates/tls/src/conn.rs crates/tls/src/handshake.rs crates/tls/src/library.rs crates/tls/src/record.rs crates/tls/src/transcript.rs crates/tls/src/verify.rs crates/tls/src/version.rs

/root/repo/target/release/deps/libpinning_tls-2832576afbed58ee.rlib: crates/tls/src/lib.rs crates/tls/src/alert.rs crates/tls/src/cipher.rs crates/tls/src/conn.rs crates/tls/src/handshake.rs crates/tls/src/library.rs crates/tls/src/record.rs crates/tls/src/transcript.rs crates/tls/src/verify.rs crates/tls/src/version.rs

/root/repo/target/release/deps/libpinning_tls-2832576afbed58ee.rmeta: crates/tls/src/lib.rs crates/tls/src/alert.rs crates/tls/src/cipher.rs crates/tls/src/conn.rs crates/tls/src/handshake.rs crates/tls/src/library.rs crates/tls/src/record.rs crates/tls/src/transcript.rs crates/tls/src/verify.rs crates/tls/src/version.rs

crates/tls/src/lib.rs:
crates/tls/src/alert.rs:
crates/tls/src/cipher.rs:
crates/tls/src/conn.rs:
crates/tls/src/handshake.rs:
crates/tls/src/library.rs:
crates/tls/src/record.rs:
crates/tls/src/transcript.rs:
crates/tls/src/verify.rs:
crates/tls/src/version.rs:
