/root/repo/target/release/deps/pinning_store-1612a1181120dfd7.d: crates/store/src/lib.rs crates/store/src/config.rs crates/store/src/crawler.rs crates/store/src/datasets.rs crates/store/src/whois.rs crates/store/src/world.rs crates/store/src/world/appgen.rs

/root/repo/target/release/deps/libpinning_store-1612a1181120dfd7.rlib: crates/store/src/lib.rs crates/store/src/config.rs crates/store/src/crawler.rs crates/store/src/datasets.rs crates/store/src/whois.rs crates/store/src/world.rs crates/store/src/world/appgen.rs

/root/repo/target/release/deps/libpinning_store-1612a1181120dfd7.rmeta: crates/store/src/lib.rs crates/store/src/config.rs crates/store/src/crawler.rs crates/store/src/datasets.rs crates/store/src/whois.rs crates/store/src/world.rs crates/store/src/world/appgen.rs

crates/store/src/lib.rs:
crates/store/src/config.rs:
crates/store/src/crawler.rs:
crates/store/src/datasets.rs:
crates/store/src/whois.rs:
crates/store/src/world.rs:
crates/store/src/world/appgen.rs:
