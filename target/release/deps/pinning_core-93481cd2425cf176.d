/root/repo/target/release/deps/pinning_core-93481cd2425cf176.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/record.rs crates/core/src/study.rs crates/core/src/tables.rs

/root/repo/target/release/deps/libpinning_core-93481cd2425cf176.rlib: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/record.rs crates/core/src/study.rs crates/core/src/tables.rs

/root/repo/target/release/deps/libpinning_core-93481cd2425cf176.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/record.rs crates/core/src/study.rs crates/core/src/tables.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/record.rs:
crates/core/src/study.rs:
crates/core/src/tables.rs:
