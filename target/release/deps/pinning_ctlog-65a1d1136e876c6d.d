/root/repo/target/release/deps/pinning_ctlog-65a1d1136e876c6d.d: crates/ctlog/src/lib.rs crates/ctlog/src/merkle.rs crates/ctlog/src/monitor.rs crates/ctlog/src/resolver.rs crates/ctlog/src/shard.rs crates/ctlog/src/sth.rs

/root/repo/target/release/deps/libpinning_ctlog-65a1d1136e876c6d.rlib: crates/ctlog/src/lib.rs crates/ctlog/src/merkle.rs crates/ctlog/src/monitor.rs crates/ctlog/src/resolver.rs crates/ctlog/src/shard.rs crates/ctlog/src/sth.rs

/root/repo/target/release/deps/libpinning_ctlog-65a1d1136e876c6d.rmeta: crates/ctlog/src/lib.rs crates/ctlog/src/merkle.rs crates/ctlog/src/monitor.rs crates/ctlog/src/resolver.rs crates/ctlog/src/shard.rs crates/ctlog/src/sth.rs

crates/ctlog/src/lib.rs:
crates/ctlog/src/merkle.rs:
crates/ctlog/src/monitor.rs:
crates/ctlog/src/resolver.rs:
crates/ctlog/src/shard.rs:
crates/ctlog/src/sth.rs:
