/root/repo/target/release/examples/full_study-38687d5f9d5379cb.d: examples/full_study.rs

/root/repo/target/release/examples/full_study-38687d5f9d5379cb: examples/full_study.rs

examples/full_study.rs:
