/root/repo/target/release/examples/quickstart-8db938dfaab2ed25.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-8db938dfaab2ed25: examples/quickstart.rs

examples/quickstart.rs:
