/root/repo/target/release/examples/mitm_lab-b96ce4c6fef5b8b4.d: examples/mitm_lab.rs

/root/repo/target/release/examples/mitm_lab-b96ce4c6fef5b8b4: examples/mitm_lab.rs

examples/mitm_lab.rs:
