/root/repo/target/release/examples/export_dataset-1347335af84b20e4.d: examples/export_dataset.rs

/root/repo/target/release/examples/export_dataset-1347335af84b20e4: examples/export_dataset.rs

examples/export_dataset.rs:
