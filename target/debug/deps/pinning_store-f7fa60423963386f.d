/root/repo/target/debug/deps/pinning_store-f7fa60423963386f.d: crates/store/src/lib.rs crates/store/src/config.rs crates/store/src/crawler.rs crates/store/src/datasets.rs crates/store/src/whois.rs crates/store/src/world.rs crates/store/src/world/appgen.rs Cargo.toml

/root/repo/target/debug/deps/libpinning_store-f7fa60423963386f.rmeta: crates/store/src/lib.rs crates/store/src/config.rs crates/store/src/crawler.rs crates/store/src/datasets.rs crates/store/src/whois.rs crates/store/src/world.rs crates/store/src/world/appgen.rs Cargo.toml

crates/store/src/lib.rs:
crates/store/src/config.rs:
crates/store/src/crawler.rs:
crates/store/src/datasets.rs:
crates/store/src/whois.rs:
crates/store/src/world.rs:
crates/store/src/world/appgen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
