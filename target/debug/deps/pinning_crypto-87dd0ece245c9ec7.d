/root/repo/target/debug/deps/pinning_crypto-87dd0ece245c9ec7.d: crates/crypto/src/lib.rs crates/crypto/src/base64.rs crates/crypto/src/hex.rs crates/crypto/src/hmac.rs crates/crypto/src/rng.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs crates/crypto/src/sig.rs

/root/repo/target/debug/deps/libpinning_crypto-87dd0ece245c9ec7.rlib: crates/crypto/src/lib.rs crates/crypto/src/base64.rs crates/crypto/src/hex.rs crates/crypto/src/hmac.rs crates/crypto/src/rng.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs crates/crypto/src/sig.rs

/root/repo/target/debug/deps/libpinning_crypto-87dd0ece245c9ec7.rmeta: crates/crypto/src/lib.rs crates/crypto/src/base64.rs crates/crypto/src/hex.rs crates/crypto/src/hmac.rs crates/crypto/src/rng.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs crates/crypto/src/sig.rs

crates/crypto/src/lib.rs:
crates/crypto/src/base64.rs:
crates/crypto/src/hex.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/rng.rs:
crates/crypto/src/sha1.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/sig.rs:
