/root/repo/target/debug/deps/pinning_analysis-70df6495087ce7ab.d: crates/analysis/src/lib.rs crates/analysis/src/categories.rs crates/analysis/src/certs.rs crates/analysis/src/circumvent.rs crates/analysis/src/consistency.rs crates/analysis/src/destinations.rs crates/analysis/src/dynamics/mod.rs crates/analysis/src/dynamics/calibration.rs crates/analysis/src/dynamics/classify.rs crates/analysis/src/dynamics/detect.rs crates/analysis/src/dynamics/interaction.rs crates/analysis/src/dynamics/pipeline.rs crates/analysis/src/pii.rs crates/analysis/src/results.rs crates/analysis/src/security.rs crates/analysis/src/statics/mod.rs crates/analysis/src/statics/attribution.rs crates/analysis/src/statics/extract.rs crates/analysis/src/statics/nsc.rs crates/analysis/src/statics/scanner.rs

/root/repo/target/debug/deps/libpinning_analysis-70df6495087ce7ab.rmeta: crates/analysis/src/lib.rs crates/analysis/src/categories.rs crates/analysis/src/certs.rs crates/analysis/src/circumvent.rs crates/analysis/src/consistency.rs crates/analysis/src/destinations.rs crates/analysis/src/dynamics/mod.rs crates/analysis/src/dynamics/calibration.rs crates/analysis/src/dynamics/classify.rs crates/analysis/src/dynamics/detect.rs crates/analysis/src/dynamics/interaction.rs crates/analysis/src/dynamics/pipeline.rs crates/analysis/src/pii.rs crates/analysis/src/results.rs crates/analysis/src/security.rs crates/analysis/src/statics/mod.rs crates/analysis/src/statics/attribution.rs crates/analysis/src/statics/extract.rs crates/analysis/src/statics/nsc.rs crates/analysis/src/statics/scanner.rs

crates/analysis/src/lib.rs:
crates/analysis/src/categories.rs:
crates/analysis/src/certs.rs:
crates/analysis/src/circumvent.rs:
crates/analysis/src/consistency.rs:
crates/analysis/src/destinations.rs:
crates/analysis/src/dynamics/mod.rs:
crates/analysis/src/dynamics/calibration.rs:
crates/analysis/src/dynamics/classify.rs:
crates/analysis/src/dynamics/detect.rs:
crates/analysis/src/dynamics/interaction.rs:
crates/analysis/src/dynamics/pipeline.rs:
crates/analysis/src/pii.rs:
crates/analysis/src/results.rs:
crates/analysis/src/security.rs:
crates/analysis/src/statics/mod.rs:
crates/analysis/src/statics/attribution.rs:
crates/analysis/src/statics/extract.rs:
crates/analysis/src/statics/nsc.rs:
crates/analysis/src/statics/scanner.rs:
