/root/repo/target/debug/deps/pinning_core-3d4b1fb52b7b898f.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/record.rs crates/core/src/study.rs crates/core/src/tables.rs

/root/repo/target/debug/deps/pinning_core-3d4b1fb52b7b898f: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/record.rs crates/core/src/study.rs crates/core/src/tables.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/record.rs:
crates/core/src/study.rs:
crates/core/src/tables.rs:
