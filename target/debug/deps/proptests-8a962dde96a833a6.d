/root/repo/target/debug/deps/proptests-8a962dde96a833a6.d: crates/crypto/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-8a962dde96a833a6.rmeta: crates/crypto/tests/proptests.rs Cargo.toml

crates/crypto/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
