/root/repo/target/debug/deps/proptests-014328defedba395.d: crates/crypto/tests/proptests.rs

/root/repo/target/debug/deps/proptests-014328defedba395: crates/crypto/tests/proptests.rs

crates/crypto/tests/proptests.rs:
