/root/repo/target/debug/deps/pinning_report-fd32c2192d5dfbc1.d: crates/report/src/lib.rs crates/report/src/export.rs crates/report/src/figures.rs crates/report/src/tables.rs crates/report/src/text.rs

/root/repo/target/debug/deps/pinning_report-fd32c2192d5dfbc1: crates/report/src/lib.rs crates/report/src/export.rs crates/report/src/figures.rs crates/report/src/tables.rs crates/report/src/text.rs

crates/report/src/lib.rs:
crates/report/src/export.rs:
crates/report/src/figures.rs:
crates/report/src/tables.rs:
crates/report/src/text.rs:
