/root/repo/target/debug/deps/tables-25d6607d2e5b8a1d.d: crates/bench/benches/tables.rs Cargo.toml

/root/repo/target/debug/deps/libtables-25d6607d2e5b8a1d.rmeta: crates/bench/benches/tables.rs Cargo.toml

crates/bench/benches/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
