/root/repo/target/debug/deps/app_tls_pinning-b2376fae03d1b79f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libapp_tls_pinning-b2376fae03d1b79f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
