/root/repo/target/debug/deps/ctlog-15c799f1cce16766.d: tests/ctlog.rs

/root/repo/target/debug/deps/ctlog-15c799f1cce16766: tests/ctlog.rs

tests/ctlog.rs:
