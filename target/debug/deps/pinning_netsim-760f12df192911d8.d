/root/repo/target/debug/deps/pinning_netsim-760f12df192911d8.d: crates/netsim/src/lib.rs crates/netsim/src/device.rs crates/netsim/src/faults.rs crates/netsim/src/flow.rs crates/netsim/src/network.rs crates/netsim/src/proxy.rs crates/netsim/src/server.rs crates/netsim/src/simcap.rs

/root/repo/target/debug/deps/pinning_netsim-760f12df192911d8: crates/netsim/src/lib.rs crates/netsim/src/device.rs crates/netsim/src/faults.rs crates/netsim/src/flow.rs crates/netsim/src/network.rs crates/netsim/src/proxy.rs crates/netsim/src/server.rs crates/netsim/src/simcap.rs

crates/netsim/src/lib.rs:
crates/netsim/src/device.rs:
crates/netsim/src/faults.rs:
crates/netsim/src/flow.rs:
crates/netsim/src/network.rs:
crates/netsim/src/proxy.rs:
crates/netsim/src/server.rs:
crates/netsim/src/simcap.rs:
