/root/repo/target/debug/deps/chaos-852f44c138059ffd.d: tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-852f44c138059ffd.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
