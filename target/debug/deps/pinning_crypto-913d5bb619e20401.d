/root/repo/target/debug/deps/pinning_crypto-913d5bb619e20401.d: crates/crypto/src/lib.rs crates/crypto/src/base64.rs crates/crypto/src/hex.rs crates/crypto/src/hmac.rs crates/crypto/src/rng.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs crates/crypto/src/sig.rs

/root/repo/target/debug/deps/libpinning_crypto-913d5bb619e20401.rmeta: crates/crypto/src/lib.rs crates/crypto/src/base64.rs crates/crypto/src/hex.rs crates/crypto/src/hmac.rs crates/crypto/src/rng.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs crates/crypto/src/sig.rs

crates/crypto/src/lib.rs:
crates/crypto/src/base64.rs:
crates/crypto/src/hex.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/rng.rs:
crates/crypto/src/sha1.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/sig.rs:
