/root/repo/target/debug/deps/proptests-ba9c39c17a644d02.d: crates/app/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ba9c39c17a644d02: crates/app/tests/proptests.rs

crates/app/tests/proptests.rs:
