/root/repo/target/debug/deps/pinning_pki-eaf73c62b624dd75.d: crates/pki/src/lib.rs crates/pki/src/authority.rs crates/pki/src/cert.rs crates/pki/src/chain.rs crates/pki/src/encode.rs crates/pki/src/error.rs crates/pki/src/hpkp.rs crates/pki/src/name.rs crates/pki/src/pin.rs crates/pki/src/store.rs crates/pki/src/time.rs crates/pki/src/universe.rs crates/pki/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libpinning_pki-eaf73c62b624dd75.rmeta: crates/pki/src/lib.rs crates/pki/src/authority.rs crates/pki/src/cert.rs crates/pki/src/chain.rs crates/pki/src/encode.rs crates/pki/src/error.rs crates/pki/src/hpkp.rs crates/pki/src/name.rs crates/pki/src/pin.rs crates/pki/src/store.rs crates/pki/src/time.rs crates/pki/src/universe.rs crates/pki/src/validate.rs Cargo.toml

crates/pki/src/lib.rs:
crates/pki/src/authority.rs:
crates/pki/src/cert.rs:
crates/pki/src/chain.rs:
crates/pki/src/encode.rs:
crates/pki/src/error.rs:
crates/pki/src/hpkp.rs:
crates/pki/src/name.rs:
crates/pki/src/pin.rs:
crates/pki/src/store.rs:
crates/pki/src/time.rs:
crates/pki/src/universe.rs:
crates/pki/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
