/root/repo/target/debug/deps/proptests-d249b871fb6fd479.d: crates/pki/tests/proptests.rs

/root/repo/target/debug/deps/proptests-d249b871fb6fd479: crates/pki/tests/proptests.rs

crates/pki/tests/proptests.rs:
