/root/repo/target/debug/deps/pinning_netsim-c49d2db25af60486.d: crates/netsim/src/lib.rs crates/netsim/src/device.rs crates/netsim/src/faults.rs crates/netsim/src/flow.rs crates/netsim/src/network.rs crates/netsim/src/proxy.rs crates/netsim/src/server.rs crates/netsim/src/simcap.rs Cargo.toml

/root/repo/target/debug/deps/libpinning_netsim-c49d2db25af60486.rmeta: crates/netsim/src/lib.rs crates/netsim/src/device.rs crates/netsim/src/faults.rs crates/netsim/src/flow.rs crates/netsim/src/network.rs crates/netsim/src/proxy.rs crates/netsim/src/server.rs crates/netsim/src/simcap.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/device.rs:
crates/netsim/src/faults.rs:
crates/netsim/src/flow.rs:
crates/netsim/src/network.rs:
crates/netsim/src/proxy.rs:
crates/netsim/src/server.rs:
crates/netsim/src/simcap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
