/root/repo/target/debug/deps/app_tls_pinning-4cc20f6eab11a28a.d: src/lib.rs

/root/repo/target/debug/deps/libapp_tls_pinning-4cc20f6eab11a28a.rlib: src/lib.rs

/root/repo/target/debug/deps/libapp_tls_pinning-4cc20f6eab11a28a.rmeta: src/lib.rs

src/lib.rs:
