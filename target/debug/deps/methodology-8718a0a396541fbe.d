/root/repo/target/debug/deps/methodology-8718a0a396541fbe.d: tests/methodology.rs

/root/repo/target/debug/deps/methodology-8718a0a396541fbe: tests/methodology.rs

tests/methodology.rs:
