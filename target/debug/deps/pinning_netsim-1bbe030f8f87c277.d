/root/repo/target/debug/deps/pinning_netsim-1bbe030f8f87c277.d: crates/netsim/src/lib.rs crates/netsim/src/device.rs crates/netsim/src/faults.rs crates/netsim/src/flow.rs crates/netsim/src/network.rs crates/netsim/src/proxy.rs crates/netsim/src/server.rs crates/netsim/src/simcap.rs

/root/repo/target/debug/deps/libpinning_netsim-1bbe030f8f87c277.rmeta: crates/netsim/src/lib.rs crates/netsim/src/device.rs crates/netsim/src/faults.rs crates/netsim/src/flow.rs crates/netsim/src/network.rs crates/netsim/src/proxy.rs crates/netsim/src/server.rs crates/netsim/src/simcap.rs

crates/netsim/src/lib.rs:
crates/netsim/src/device.rs:
crates/netsim/src/faults.rs:
crates/netsim/src/flow.rs:
crates/netsim/src/network.rs:
crates/netsim/src/proxy.rs:
crates/netsim/src/server.rs:
crates/netsim/src/simcap.rs:
