/root/repo/target/debug/deps/methodology-f4ee4d91a7cab9fa.d: tests/methodology.rs Cargo.toml

/root/repo/target/debug/deps/libmethodology-f4ee4d91a7cab9fa.rmeta: tests/methodology.rs Cargo.toml

tests/methodology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
