/root/repo/target/debug/deps/proptests-0e3e61cdde2c663e.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-0e3e61cdde2c663e: tests/proptests.rs

tests/proptests.rs:
