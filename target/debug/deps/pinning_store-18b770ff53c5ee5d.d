/root/repo/target/debug/deps/pinning_store-18b770ff53c5ee5d.d: crates/store/src/lib.rs crates/store/src/config.rs crates/store/src/crawler.rs crates/store/src/datasets.rs crates/store/src/whois.rs crates/store/src/world.rs crates/store/src/world/appgen.rs

/root/repo/target/debug/deps/libpinning_store-18b770ff53c5ee5d.rlib: crates/store/src/lib.rs crates/store/src/config.rs crates/store/src/crawler.rs crates/store/src/datasets.rs crates/store/src/whois.rs crates/store/src/world.rs crates/store/src/world/appgen.rs

/root/repo/target/debug/deps/libpinning_store-18b770ff53c5ee5d.rmeta: crates/store/src/lib.rs crates/store/src/config.rs crates/store/src/crawler.rs crates/store/src/datasets.rs crates/store/src/whois.rs crates/store/src/world.rs crates/store/src/world/appgen.rs

crates/store/src/lib.rs:
crates/store/src/config.rs:
crates/store/src/crawler.rs:
crates/store/src/datasets.rs:
crates/store/src/whois.rs:
crates/store/src/world.rs:
crates/store/src/world/appgen.rs:
