/root/repo/target/debug/deps/pinning_tls-68d64286ec3b9082.d: crates/tls/src/lib.rs crates/tls/src/alert.rs crates/tls/src/cipher.rs crates/tls/src/conn.rs crates/tls/src/handshake.rs crates/tls/src/library.rs crates/tls/src/record.rs crates/tls/src/transcript.rs crates/tls/src/verify.rs crates/tls/src/version.rs Cargo.toml

/root/repo/target/debug/deps/libpinning_tls-68d64286ec3b9082.rmeta: crates/tls/src/lib.rs crates/tls/src/alert.rs crates/tls/src/cipher.rs crates/tls/src/conn.rs crates/tls/src/handshake.rs crates/tls/src/library.rs crates/tls/src/record.rs crates/tls/src/transcript.rs crates/tls/src/verify.rs crates/tls/src/version.rs Cargo.toml

crates/tls/src/lib.rs:
crates/tls/src/alert.rs:
crates/tls/src/cipher.rs:
crates/tls/src/conn.rs:
crates/tls/src/handshake.rs:
crates/tls/src/library.rs:
crates/tls/src/record.rs:
crates/tls/src/transcript.rs:
crates/tls/src/verify.rs:
crates/tls/src/version.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
