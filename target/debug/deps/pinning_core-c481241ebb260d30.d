/root/repo/target/debug/deps/pinning_core-c481241ebb260d30.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/record.rs crates/core/src/study.rs crates/core/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libpinning_core-c481241ebb260d30.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/record.rs crates/core/src/study.rs crates/core/src/tables.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/record.rs:
crates/core/src/study.rs:
crates/core/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
