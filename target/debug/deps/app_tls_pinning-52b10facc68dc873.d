/root/repo/target/debug/deps/app_tls_pinning-52b10facc68dc873.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libapp_tls_pinning-52b10facc68dc873.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
