/root/repo/target/debug/deps/determinism-1de1a6699eb4a046.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-1de1a6699eb4a046: tests/determinism.rs

tests/determinism.rs:
