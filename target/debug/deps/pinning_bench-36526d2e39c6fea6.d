/root/repo/target/debug/deps/pinning_bench-36526d2e39c6fea6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpinning_bench-36526d2e39c6fea6.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpinning_bench-36526d2e39c6fea6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
