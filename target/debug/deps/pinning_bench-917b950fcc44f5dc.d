/root/repo/target/debug/deps/pinning_bench-917b950fcc44f5dc.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpinning_bench-917b950fcc44f5dc.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
