/root/repo/target/debug/deps/pinning_report-c79bac64e744bd0d.d: crates/report/src/lib.rs crates/report/src/export.rs crates/report/src/figures.rs crates/report/src/tables.rs crates/report/src/text.rs

/root/repo/target/debug/deps/libpinning_report-c79bac64e744bd0d.rmeta: crates/report/src/lib.rs crates/report/src/export.rs crates/report/src/figures.rs crates/report/src/tables.rs crates/report/src/text.rs

crates/report/src/lib.rs:
crates/report/src/export.rs:
crates/report/src/figures.rs:
crates/report/src/tables.rs:
crates/report/src/text.rs:
