/root/repo/target/debug/deps/end_to_end-9f7ca83de82c9c9d.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-9f7ca83de82c9c9d: tests/end_to_end.rs

tests/end_to_end.rs:
