/root/repo/target/debug/deps/proptests-05cacd11f7746997.d: crates/netsim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-05cacd11f7746997: crates/netsim/tests/proptests.rs

crates/netsim/tests/proptests.rs:
