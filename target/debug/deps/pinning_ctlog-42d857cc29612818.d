/root/repo/target/debug/deps/pinning_ctlog-42d857cc29612818.d: crates/ctlog/src/lib.rs

/root/repo/target/debug/deps/libpinning_ctlog-42d857cc29612818.rlib: crates/ctlog/src/lib.rs

/root/repo/target/debug/deps/libpinning_ctlog-42d857cc29612818.rmeta: crates/ctlog/src/lib.rs

crates/ctlog/src/lib.rs:
