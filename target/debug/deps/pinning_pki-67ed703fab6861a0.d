/root/repo/target/debug/deps/pinning_pki-67ed703fab6861a0.d: crates/pki/src/lib.rs crates/pki/src/authority.rs crates/pki/src/cert.rs crates/pki/src/chain.rs crates/pki/src/encode.rs crates/pki/src/error.rs crates/pki/src/hpkp.rs crates/pki/src/name.rs crates/pki/src/pin.rs crates/pki/src/store.rs crates/pki/src/time.rs crates/pki/src/universe.rs crates/pki/src/validate.rs

/root/repo/target/debug/deps/libpinning_pki-67ed703fab6861a0.rmeta: crates/pki/src/lib.rs crates/pki/src/authority.rs crates/pki/src/cert.rs crates/pki/src/chain.rs crates/pki/src/encode.rs crates/pki/src/error.rs crates/pki/src/hpkp.rs crates/pki/src/name.rs crates/pki/src/pin.rs crates/pki/src/store.rs crates/pki/src/time.rs crates/pki/src/universe.rs crates/pki/src/validate.rs

crates/pki/src/lib.rs:
crates/pki/src/authority.rs:
crates/pki/src/cert.rs:
crates/pki/src/chain.rs:
crates/pki/src/encode.rs:
crates/pki/src/error.rs:
crates/pki/src/hpkp.rs:
crates/pki/src/name.rs:
crates/pki/src/pin.rs:
crates/pki/src/store.rs:
crates/pki/src/time.rs:
crates/pki/src/universe.rs:
crates/pki/src/validate.rs:
