/root/repo/target/debug/deps/chaos-c7b20c40104334ba.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-c7b20c40104334ba: tests/chaos.rs

tests/chaos.rs:
