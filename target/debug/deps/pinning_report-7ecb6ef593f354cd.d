/root/repo/target/debug/deps/pinning_report-7ecb6ef593f354cd.d: crates/report/src/lib.rs crates/report/src/export.rs crates/report/src/figures.rs crates/report/src/tables.rs crates/report/src/text.rs

/root/repo/target/debug/deps/libpinning_report-7ecb6ef593f354cd.rlib: crates/report/src/lib.rs crates/report/src/export.rs crates/report/src/figures.rs crates/report/src/tables.rs crates/report/src/text.rs

/root/repo/target/debug/deps/libpinning_report-7ecb6ef593f354cd.rmeta: crates/report/src/lib.rs crates/report/src/export.rs crates/report/src/figures.rs crates/report/src/tables.rs crates/report/src/text.rs

crates/report/src/lib.rs:
crates/report/src/export.rs:
crates/report/src/figures.rs:
crates/report/src/tables.rs:
crates/report/src/text.rs:
