/root/repo/target/debug/deps/pinning_ctlog-a01525d0da46f93c.d: crates/ctlog/src/lib.rs

/root/repo/target/debug/deps/pinning_ctlog-a01525d0da46f93c: crates/ctlog/src/lib.rs

crates/ctlog/src/lib.rs:
