/root/repo/target/debug/deps/pinning_ctlog-a01525d0da46f93c.d: crates/ctlog/src/lib.rs crates/ctlog/src/merkle.rs crates/ctlog/src/monitor.rs crates/ctlog/src/resolver.rs crates/ctlog/src/shard.rs crates/ctlog/src/sth.rs

/root/repo/target/debug/deps/pinning_ctlog-a01525d0da46f93c: crates/ctlog/src/lib.rs crates/ctlog/src/merkle.rs crates/ctlog/src/monitor.rs crates/ctlog/src/resolver.rs crates/ctlog/src/shard.rs crates/ctlog/src/sth.rs

crates/ctlog/src/lib.rs:
crates/ctlog/src/merkle.rs:
crates/ctlog/src/monitor.rs:
crates/ctlog/src/resolver.rs:
crates/ctlog/src/shard.rs:
crates/ctlog/src/sth.rs:
