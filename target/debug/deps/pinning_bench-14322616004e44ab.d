/root/repo/target/debug/deps/pinning_bench-14322616004e44ab.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpinning_bench-14322616004e44ab.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
