/root/repo/target/debug/deps/pinning_app-59af4ff7b578c064.d: crates/app/src/lib.rs crates/app/src/app.rs crates/app/src/behavior.rs crates/app/src/builder.rs crates/app/src/category.rs crates/app/src/nsc.rs crates/app/src/package.rs crates/app/src/pii.rs crates/app/src/pinning.rs crates/app/src/platform.rs crates/app/src/sdk.rs crates/app/src/xml.rs Cargo.toml

/root/repo/target/debug/deps/libpinning_app-59af4ff7b578c064.rmeta: crates/app/src/lib.rs crates/app/src/app.rs crates/app/src/behavior.rs crates/app/src/builder.rs crates/app/src/category.rs crates/app/src/nsc.rs crates/app/src/package.rs crates/app/src/pii.rs crates/app/src/pinning.rs crates/app/src/platform.rs crates/app/src/sdk.rs crates/app/src/xml.rs Cargo.toml

crates/app/src/lib.rs:
crates/app/src/app.rs:
crates/app/src/behavior.rs:
crates/app/src/builder.rs:
crates/app/src/category.rs:
crates/app/src/nsc.rs:
crates/app/src/package.rs:
crates/app/src/pii.rs:
crates/app/src/pinning.rs:
crates/app/src/platform.rs:
crates/app/src/sdk.rs:
crates/app/src/xml.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
