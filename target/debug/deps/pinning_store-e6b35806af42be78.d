/root/repo/target/debug/deps/pinning_store-e6b35806af42be78.d: crates/store/src/lib.rs crates/store/src/config.rs crates/store/src/crawler.rs crates/store/src/datasets.rs crates/store/src/whois.rs crates/store/src/world.rs crates/store/src/world/appgen.rs

/root/repo/target/debug/deps/libpinning_store-e6b35806af42be78.rmeta: crates/store/src/lib.rs crates/store/src/config.rs crates/store/src/crawler.rs crates/store/src/datasets.rs crates/store/src/whois.rs crates/store/src/world.rs crates/store/src/world/appgen.rs

crates/store/src/lib.rs:
crates/store/src/config.rs:
crates/store/src/crawler.rs:
crates/store/src/datasets.rs:
crates/store/src/whois.rs:
crates/store/src/world.rs:
crates/store/src/world/appgen.rs:
