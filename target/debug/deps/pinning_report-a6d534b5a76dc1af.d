/root/repo/target/debug/deps/pinning_report-a6d534b5a76dc1af.d: crates/report/src/lib.rs crates/report/src/export.rs crates/report/src/figures.rs crates/report/src/tables.rs crates/report/src/text.rs Cargo.toml

/root/repo/target/debug/deps/libpinning_report-a6d534b5a76dc1af.rmeta: crates/report/src/lib.rs crates/report/src/export.rs crates/report/src/figures.rs crates/report/src/tables.rs crates/report/src/text.rs Cargo.toml

crates/report/src/lib.rs:
crates/report/src/export.rs:
crates/report/src/figures.rs:
crates/report/src/tables.rs:
crates/report/src/text.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
