/root/repo/target/debug/deps/proptests-69bb38c5f82ed2e3.d: crates/tls/tests/proptests.rs

/root/repo/target/debug/deps/proptests-69bb38c5f82ed2e3: crates/tls/tests/proptests.rs

crates/tls/tests/proptests.rs:
