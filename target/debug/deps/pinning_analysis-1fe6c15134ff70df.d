/root/repo/target/debug/deps/pinning_analysis-1fe6c15134ff70df.d: crates/analysis/src/lib.rs crates/analysis/src/categories.rs crates/analysis/src/certs.rs crates/analysis/src/circumvent.rs crates/analysis/src/consistency.rs crates/analysis/src/destinations.rs crates/analysis/src/dynamics/mod.rs crates/analysis/src/dynamics/calibration.rs crates/analysis/src/dynamics/classify.rs crates/analysis/src/dynamics/detect.rs crates/analysis/src/dynamics/interaction.rs crates/analysis/src/dynamics/pipeline.rs crates/analysis/src/pii.rs crates/analysis/src/results.rs crates/analysis/src/security.rs crates/analysis/src/statics/mod.rs crates/analysis/src/statics/attribution.rs crates/analysis/src/statics/extract.rs crates/analysis/src/statics/nsc.rs crates/analysis/src/statics/scanner.rs Cargo.toml

/root/repo/target/debug/deps/libpinning_analysis-1fe6c15134ff70df.rmeta: crates/analysis/src/lib.rs crates/analysis/src/categories.rs crates/analysis/src/certs.rs crates/analysis/src/circumvent.rs crates/analysis/src/consistency.rs crates/analysis/src/destinations.rs crates/analysis/src/dynamics/mod.rs crates/analysis/src/dynamics/calibration.rs crates/analysis/src/dynamics/classify.rs crates/analysis/src/dynamics/detect.rs crates/analysis/src/dynamics/interaction.rs crates/analysis/src/dynamics/pipeline.rs crates/analysis/src/pii.rs crates/analysis/src/results.rs crates/analysis/src/security.rs crates/analysis/src/statics/mod.rs crates/analysis/src/statics/attribution.rs crates/analysis/src/statics/extract.rs crates/analysis/src/statics/nsc.rs crates/analysis/src/statics/scanner.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/categories.rs:
crates/analysis/src/certs.rs:
crates/analysis/src/circumvent.rs:
crates/analysis/src/consistency.rs:
crates/analysis/src/destinations.rs:
crates/analysis/src/dynamics/mod.rs:
crates/analysis/src/dynamics/calibration.rs:
crates/analysis/src/dynamics/classify.rs:
crates/analysis/src/dynamics/detect.rs:
crates/analysis/src/dynamics/interaction.rs:
crates/analysis/src/dynamics/pipeline.rs:
crates/analysis/src/pii.rs:
crates/analysis/src/results.rs:
crates/analysis/src/security.rs:
crates/analysis/src/statics/mod.rs:
crates/analysis/src/statics/attribution.rs:
crates/analysis/src/statics/extract.rs:
crates/analysis/src/statics/nsc.rs:
crates/analysis/src/statics/scanner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
