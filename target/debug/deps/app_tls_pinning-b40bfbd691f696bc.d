/root/repo/target/debug/deps/app_tls_pinning-b40bfbd691f696bc.d: src/lib.rs

/root/repo/target/debug/deps/app_tls_pinning-b40bfbd691f696bc: src/lib.rs

src/lib.rs:
