/root/repo/target/debug/deps/ctlog-fefee97da61b079f.d: tests/ctlog.rs Cargo.toml

/root/repo/target/debug/deps/libctlog-fefee97da61b079f.rmeta: tests/ctlog.rs Cargo.toml

tests/ctlog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
