/root/repo/target/debug/deps/pinning_ctlog-47ad98d800aa9f55.d: crates/ctlog/src/lib.rs crates/ctlog/src/merkle.rs crates/ctlog/src/monitor.rs crates/ctlog/src/resolver.rs crates/ctlog/src/shard.rs crates/ctlog/src/sth.rs

/root/repo/target/debug/deps/libpinning_ctlog-47ad98d800aa9f55.rmeta: crates/ctlog/src/lib.rs crates/ctlog/src/merkle.rs crates/ctlog/src/monitor.rs crates/ctlog/src/resolver.rs crates/ctlog/src/shard.rs crates/ctlog/src/sth.rs

crates/ctlog/src/lib.rs:
crates/ctlog/src/merkle.rs:
crates/ctlog/src/monitor.rs:
crates/ctlog/src/resolver.rs:
crates/ctlog/src/shard.rs:
crates/ctlog/src/sth.rs:
