/root/repo/target/debug/deps/pinning_bench-2bb6a65baab20bd2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/pinning_bench-2bb6a65baab20bd2: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
