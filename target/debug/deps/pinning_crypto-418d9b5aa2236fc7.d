/root/repo/target/debug/deps/pinning_crypto-418d9b5aa2236fc7.d: crates/crypto/src/lib.rs crates/crypto/src/base64.rs crates/crypto/src/hex.rs crates/crypto/src/hmac.rs crates/crypto/src/rng.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs crates/crypto/src/sig.rs Cargo.toml

/root/repo/target/debug/deps/libpinning_crypto-418d9b5aa2236fc7.rmeta: crates/crypto/src/lib.rs crates/crypto/src/base64.rs crates/crypto/src/hex.rs crates/crypto/src/hmac.rs crates/crypto/src/rng.rs crates/crypto/src/sha1.rs crates/crypto/src/sha256.rs crates/crypto/src/sig.rs Cargo.toml

crates/crypto/src/lib.rs:
crates/crypto/src/base64.rs:
crates/crypto/src/hex.rs:
crates/crypto/src/hmac.rs:
crates/crypto/src/rng.rs:
crates/crypto/src/sha1.rs:
crates/crypto/src/sha256.rs:
crates/crypto/src/sig.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
