/root/repo/target/debug/deps/pinning_app-fd3a5b7140ba7d22.d: crates/app/src/lib.rs crates/app/src/app.rs crates/app/src/behavior.rs crates/app/src/builder.rs crates/app/src/category.rs crates/app/src/nsc.rs crates/app/src/package.rs crates/app/src/pii.rs crates/app/src/pinning.rs crates/app/src/platform.rs crates/app/src/sdk.rs crates/app/src/xml.rs

/root/repo/target/debug/deps/libpinning_app-fd3a5b7140ba7d22.rmeta: crates/app/src/lib.rs crates/app/src/app.rs crates/app/src/behavior.rs crates/app/src/builder.rs crates/app/src/category.rs crates/app/src/nsc.rs crates/app/src/package.rs crates/app/src/pii.rs crates/app/src/pinning.rs crates/app/src/platform.rs crates/app/src/sdk.rs crates/app/src/xml.rs

crates/app/src/lib.rs:
crates/app/src/app.rs:
crates/app/src/behavior.rs:
crates/app/src/builder.rs:
crates/app/src/category.rs:
crates/app/src/nsc.rs:
crates/app/src/package.rs:
crates/app/src/pii.rs:
crates/app/src/pinning.rs:
crates/app/src/platform.rs:
crates/app/src/sdk.rs:
crates/app/src/xml.rs:
