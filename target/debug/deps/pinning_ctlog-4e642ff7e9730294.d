/root/repo/target/debug/deps/pinning_ctlog-4e642ff7e9730294.d: crates/ctlog/src/lib.rs crates/ctlog/src/merkle.rs crates/ctlog/src/monitor.rs crates/ctlog/src/resolver.rs crates/ctlog/src/shard.rs crates/ctlog/src/sth.rs Cargo.toml

/root/repo/target/debug/deps/libpinning_ctlog-4e642ff7e9730294.rmeta: crates/ctlog/src/lib.rs crates/ctlog/src/merkle.rs crates/ctlog/src/monitor.rs crates/ctlog/src/resolver.rs crates/ctlog/src/shard.rs crates/ctlog/src/sth.rs Cargo.toml

crates/ctlog/src/lib.rs:
crates/ctlog/src/merkle.rs:
crates/ctlog/src/monitor.rs:
crates/ctlog/src/resolver.rs:
crates/ctlog/src/shard.rs:
crates/ctlog/src/sth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
