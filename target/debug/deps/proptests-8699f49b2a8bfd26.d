/root/repo/target/debug/deps/proptests-8699f49b2a8bfd26.d: crates/tls/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-8699f49b2a8bfd26.rmeta: crates/tls/tests/proptests.rs Cargo.toml

crates/tls/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
