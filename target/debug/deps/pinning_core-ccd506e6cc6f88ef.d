/root/repo/target/debug/deps/pinning_core-ccd506e6cc6f88ef.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/record.rs crates/core/src/study.rs crates/core/src/tables.rs

/root/repo/target/debug/deps/libpinning_core-ccd506e6cc6f88ef.rlib: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/record.rs crates/core/src/study.rs crates/core/src/tables.rs

/root/repo/target/debug/deps/libpinning_core-ccd506e6cc6f88ef.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/record.rs crates/core/src/study.rs crates/core/src/tables.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/record.rs:
crates/core/src/study.rs:
crates/core/src/tables.rs:
