/root/repo/target/debug/deps/proptests-7767d5208d6ef55a.d: crates/app/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-7767d5208d6ef55a.rmeta: crates/app/tests/proptests.rs Cargo.toml

crates/app/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
