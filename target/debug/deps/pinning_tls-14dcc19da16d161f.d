/root/repo/target/debug/deps/pinning_tls-14dcc19da16d161f.d: crates/tls/src/lib.rs crates/tls/src/alert.rs crates/tls/src/cipher.rs crates/tls/src/conn.rs crates/tls/src/handshake.rs crates/tls/src/library.rs crates/tls/src/record.rs crates/tls/src/transcript.rs crates/tls/src/verify.rs crates/tls/src/version.rs

/root/repo/target/debug/deps/libpinning_tls-14dcc19da16d161f.rmeta: crates/tls/src/lib.rs crates/tls/src/alert.rs crates/tls/src/cipher.rs crates/tls/src/conn.rs crates/tls/src/handshake.rs crates/tls/src/library.rs crates/tls/src/record.rs crates/tls/src/transcript.rs crates/tls/src/verify.rs crates/tls/src/version.rs

crates/tls/src/lib.rs:
crates/tls/src/alert.rs:
crates/tls/src/cipher.rs:
crates/tls/src/conn.rs:
crates/tls/src/handshake.rs:
crates/tls/src/library.rs:
crates/tls/src/record.rs:
crates/tls/src/transcript.rs:
crates/tls/src/verify.rs:
crates/tls/src/version.rs:
