/root/repo/target/debug/deps/proptests-a383e5b070b75e66.d: tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-a383e5b070b75e66.rmeta: tests/proptests.rs Cargo.toml

tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
