/root/repo/target/debug/deps/proptests-3e7394e79ec1e93e.d: crates/pki/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-3e7394e79ec1e93e.rmeta: crates/pki/tests/proptests.rs Cargo.toml

crates/pki/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
