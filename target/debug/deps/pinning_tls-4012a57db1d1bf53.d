/root/repo/target/debug/deps/pinning_tls-4012a57db1d1bf53.d: crates/tls/src/lib.rs crates/tls/src/alert.rs crates/tls/src/cipher.rs crates/tls/src/conn.rs crates/tls/src/handshake.rs crates/tls/src/library.rs crates/tls/src/record.rs crates/tls/src/transcript.rs crates/tls/src/verify.rs crates/tls/src/version.rs

/root/repo/target/debug/deps/libpinning_tls-4012a57db1d1bf53.rlib: crates/tls/src/lib.rs crates/tls/src/alert.rs crates/tls/src/cipher.rs crates/tls/src/conn.rs crates/tls/src/handshake.rs crates/tls/src/library.rs crates/tls/src/record.rs crates/tls/src/transcript.rs crates/tls/src/verify.rs crates/tls/src/version.rs

/root/repo/target/debug/deps/libpinning_tls-4012a57db1d1bf53.rmeta: crates/tls/src/lib.rs crates/tls/src/alert.rs crates/tls/src/cipher.rs crates/tls/src/conn.rs crates/tls/src/handshake.rs crates/tls/src/library.rs crates/tls/src/record.rs crates/tls/src/transcript.rs crates/tls/src/verify.rs crates/tls/src/version.rs

crates/tls/src/lib.rs:
crates/tls/src/alert.rs:
crates/tls/src/cipher.rs:
crates/tls/src/conn.rs:
crates/tls/src/handshake.rs:
crates/tls/src/library.rs:
crates/tls/src/record.rs:
crates/tls/src/transcript.rs:
crates/tls/src/verify.rs:
crates/tls/src/version.rs:
