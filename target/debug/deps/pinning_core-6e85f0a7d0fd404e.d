/root/repo/target/debug/deps/pinning_core-6e85f0a7d0fd404e.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/record.rs crates/core/src/study.rs crates/core/src/tables.rs

/root/repo/target/debug/deps/libpinning_core-6e85f0a7d0fd404e.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/record.rs crates/core/src/study.rs crates/core/src/tables.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/record.rs:
crates/core/src/study.rs:
crates/core/src/tables.rs:
