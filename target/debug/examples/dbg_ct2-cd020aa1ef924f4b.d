/root/repo/target/debug/examples/dbg_ct2-cd020aa1ef924f4b.d: examples/dbg_ct2.rs

/root/repo/target/debug/examples/dbg_ct2-cd020aa1ef924f4b: examples/dbg_ct2.rs

examples/dbg_ct2.rs:
