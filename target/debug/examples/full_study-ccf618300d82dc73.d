/root/repo/target/debug/examples/full_study-ccf618300d82dc73.d: examples/full_study.rs

/root/repo/target/debug/examples/full_study-ccf618300d82dc73: examples/full_study.rs

examples/full_study.rs:
