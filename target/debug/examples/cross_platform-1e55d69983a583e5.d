/root/repo/target/debug/examples/cross_platform-1e55d69983a583e5.d: examples/cross_platform.rs

/root/repo/target/debug/examples/cross_platform-1e55d69983a583e5: examples/cross_platform.rs

examples/cross_platform.rs:
