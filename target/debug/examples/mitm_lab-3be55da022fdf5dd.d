/root/repo/target/debug/examples/mitm_lab-3be55da022fdf5dd.d: examples/mitm_lab.rs

/root/repo/target/debug/examples/mitm_lab-3be55da022fdf5dd: examples/mitm_lab.rs

examples/mitm_lab.rs:
