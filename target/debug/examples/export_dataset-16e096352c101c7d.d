/root/repo/target/debug/examples/export_dataset-16e096352c101c7d.d: examples/export_dataset.rs

/root/repo/target/debug/examples/export_dataset-16e096352c101c7d: examples/export_dataset.rs

examples/export_dataset.rs:
