/root/repo/target/debug/examples/audit_app-3779a82d901abd6a.d: examples/audit_app.rs Cargo.toml

/root/repo/target/debug/examples/libaudit_app-3779a82d901abd6a.rmeta: examples/audit_app.rs Cargo.toml

examples/audit_app.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
