/root/repo/target/debug/examples/dbg_ct-83d9487bfe50dab3.d: examples/dbg_ct.rs

/root/repo/target/debug/examples/dbg_ct-83d9487bfe50dab3: examples/dbg_ct.rs

examples/dbg_ct.rs:
