/root/repo/target/debug/examples/cross_platform-4686d9eb3b377809.d: examples/cross_platform.rs Cargo.toml

/root/repo/target/debug/examples/libcross_platform-4686d9eb3b377809.rmeta: examples/cross_platform.rs Cargo.toml

examples/cross_platform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
