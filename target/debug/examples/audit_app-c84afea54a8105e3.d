/root/repo/target/debug/examples/audit_app-c84afea54a8105e3.d: examples/audit_app.rs

/root/repo/target/debug/examples/audit_app-c84afea54a8105e3: examples/audit_app.rs

examples/audit_app.rs:
