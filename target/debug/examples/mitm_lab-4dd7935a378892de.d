/root/repo/target/debug/examples/mitm_lab-4dd7935a378892de.d: examples/mitm_lab.rs Cargo.toml

/root/repo/target/debug/examples/libmitm_lab-4dd7935a378892de.rmeta: examples/mitm_lab.rs Cargo.toml

examples/mitm_lab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
