/root/repo/target/debug/examples/full_study-4dbc9271632d4fd8.d: examples/full_study.rs Cargo.toml

/root/repo/target/debug/examples/libfull_study-4dbc9271632d4fd8.rmeta: examples/full_study.rs Cargo.toml

examples/full_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
