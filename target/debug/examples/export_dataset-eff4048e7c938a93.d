/root/repo/target/debug/examples/export_dataset-eff4048e7c938a93.d: examples/export_dataset.rs Cargo.toml

/root/repo/target/debug/examples/libexport_dataset-eff4048e7c938a93.rmeta: examples/export_dataset.rs Cargo.toml

examples/export_dataset.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
