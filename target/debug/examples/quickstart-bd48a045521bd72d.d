/root/repo/target/debug/examples/quickstart-bd48a045521bd72d.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-bd48a045521bd72d: examples/quickstart.rs

examples/quickstart.rs:
