//! # app-tls-pinning
//!
//! A full Rust reproduction of **“A Comparative Analysis of Certificate
//! Pinning in Android & iOS”** (Pradeep et al., ACM IMC 2022).
//!
//! This facade crate re-exports every workspace crate under one roof so the
//! examples and integration tests can use a single dependency:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`crypto`] | `pinning-crypto` | SHA-1/SHA-256/HMAC, base64/hex, simulated signatures |
//! | [`pki`] | `pinning-pki` | certificates, chains, validation, root stores, SPKI pins |
//! | [`ctlog`] | `pinning-ctlog` | verifiable CT ecosystem: Merkle log shards, STHs, auditor, pin resolver |
//! | [`tls`] | `pinning-tls` | record-level TLS simulator with pin verifiers |
//! | [`app`] | `pinning-app` | Android/iOS app-package model + SDK registry |
//! | [`store`] | `pinning-store` | app-store ecosystem, world generation, dataset sampling |
//! | [`netsim`] | `pinning-netsim` | DNS, origin servers, MITM proxy, device runtime |
//! | [`analysis`] | `pinning-analysis` | the paper's static & dynamic detection methodology |
//! | [`report`] | `pinning-report` | renderers for every paper table and figure |
//! | [`core`] | `pinning-core` | end-to-end study orchestrator |
//! | [`epoch`] | `pinning-epoch` | longitudinal store evolution + incremental re-study engine |
//! | [`resilience`] | `pinning-resilience` | breakers, deadlines, retries, durable-media fault model + journal recovery |
//!
//! ## Quickstart
//!
//! ```
//! use app_tls_pinning::core::{Study, StudyConfig};
//!
//! // A miniature world (fast enough for doctests); examples/full_study.rs
//! // runs the paper-scale configuration.
//! let config = StudyConfig::tiny(0xC0FFEE);
//! let results = Study::new(config).run();
//! assert!(results.datasets.len() == 6);
//! ```

pub use pinning_analysis as analysis;
pub use pinning_app as app;
pub use pinning_core as core;
pub use pinning_crypto as crypto;
pub use pinning_ctlog as ctlog;
pub use pinning_epoch as epoch;
pub use pinning_netsim as netsim;
pub use pinning_pki as pki;
pub use pinning_report as report;
pub use pinning_resilience as resilience;
pub use pinning_store as store;
pub use pinning_tls as tls;
