//! Chaos smoke: a scripted crash-and-resume cycle under fault injection.
//!
//! ```sh
//! cargo run --release --example chaos_smoke            # default seed
//! cargo run --release --example chaos_smoke -- 7 4     # seed 7, kill after 4
//! ```
//!
//! Runs a tiny-scale study under the chaos fault schedule, kills it after
//! N committed apps, then resumes from the surviving journal bytes and
//! checks the resumed report is byte-identical to an uninterrupted run of
//! the same configuration. A second cycle repeats the exercise on the
//! streaming engine with the journal routed through hostile storage
//! ([`FaultMedia`]): torn tails, lying flushes, and duplicated segments
//! between kill and resume. Exits nonzero on any divergence, so CI can
//! use it as a release-mode crash- and storage-fault gate.

use app_tls_pinning::core::stream::{StreamConfig, StreamEngine, StreamOutcome};
use app_tls_pinning::core::{Study, StudyConfig, StudyOutcome};
use app_tls_pinning::netsim::faults::FaultConfig;
use app_tls_pinning::resilience::{FaultMedia, Media, MediaFaultPlan};
use app_tls_pinning::store::config::WorldConfig;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2022);
    let kill_after: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(6);

    let config = || {
        let mut cfg = StudyConfig::tiny(seed);
        cfg.faults = FaultConfig::chaos();
        cfg
    };

    // Phase 1: run under chaos faults, die after `kill_after` apps.
    eprintln!("phase 1: chaos study, killed after {kill_after} committed apps…");
    let t0 = Instant::now();
    let mut killed_cfg = config();
    killed_cfg.supervisor.kill_after_apps = Some(kill_after);
    let journal = killed_cfg.journal();
    let outcome = Study::new(killed_cfg)
        .run_with_journal(journal)
        .expect("fresh journal must match its own config");
    let StudyOutcome::Interrupted {
        journal,
        apps_committed,
    } = outcome
    else {
        eprintln!("error: kill_after_apps={kill_after} did not interrupt the run");
        std::process::exit(1);
    };
    eprintln!(
        "  killed with {apps_committed} apps committed ({} journal bytes, {:.1?})",
        journal.as_bytes().len(),
        t0.elapsed()
    );

    // Phase 2: only the journal bytes survive the "crash"; resume from them.
    eprintln!("phase 2: resuming from the journal…");
    let disk_image = journal.into_bytes();
    let t1 = Instant::now();
    let resumed = match Study::new(config()).resume(&disk_image) {
        Ok(StudyOutcome::Completed(r)) => *r,
        Ok(StudyOutcome::Interrupted { .. }) => {
            eprintln!("error: resume without a kill switch must complete");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: resume rejected its own journal: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("  resume finished in {:.1?}", t1.elapsed());

    // Phase 3: the resumed report must be byte-identical to an
    // uninterrupted run of the same seed and fault schedule.
    eprintln!("phase 3: comparing against an uninterrupted run…");
    let uninterrupted = Study::new(config()).run();
    if resumed.render_all() != uninterrupted.render_all()
        || resumed.render_degraded() != uninterrupted.render_degraded()
    {
        eprintln!("error: resumed study diverged from the uninterrupted run");
        std::process::exit(1);
    }

    println!("{}", resumed.render_run_health());
    println!(
        "chaos smoke OK: {} resumed + {} fresh apps, report byte-identical",
        resumed.health.resumed_apps, resumed.health.fresh_apps
    );

    // Phase 4: the same crash-and-resume exercise for the streaming
    // engine, with the shard journal written through hostile storage —
    // every crash tears the unflushed tail, a fifth of flushes lie, and
    // a tenth of appends land twice.
    eprintln!("phase 4: streamed study over faulty storage…");
    let plan = MediaFaultPlan {
        torn_write: 1.0,
        lost_flush: 0.2,
        duplicate_segment: 0.1,
        ..MediaFaultPlan::none(seed ^ 0x5707AA6E)
    };
    let stream_config = |kill: Option<usize>| {
        let mut cfg = StreamConfig::new(WorldConfig::tiny(seed), 4);
        cfg.kill_after_shards = kill;
        cfg
    };
    let t2 = Instant::now();
    let mut media =
        match StreamEngine::new(stream_config(Some(2))).run_on_media(FaultMedia::new(plan)) {
            Ok(StreamOutcome::Interrupted { journal, .. }) => journal.into_media(),
            Ok(StreamOutcome::Completed(_)) => {
                eprintln!("error: kill_after_shards=2 did not interrupt the streamed run");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("error: streamed run failed on faulty media: {e}");
                std::process::exit(1);
            }
        };
    media.crash();
    let fault_stats = media.stats();
    let resumed_stream = match StreamEngine::new(stream_config(None)).resume_media(media) {
        Ok(StreamOutcome::Completed(r)) => *r,
        Ok(StreamOutcome::Interrupted { .. }) => {
            eprintln!("error: streamed resume without a kill switch must complete");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: streamed resume rejected the surviving image: {e}");
            std::process::exit(1);
        }
    };
    let clean_stream = match StreamEngine::new(stream_config(None)).run() {
        StreamOutcome::Completed(r) => *r,
        StreamOutcome::Interrupted { .. } => unreachable!("no kill configured"),
    };
    if resumed_stream.render_report() != clean_stream.render_report() {
        eprintln!("error: streamed resume over faulty media diverged from the clean run");
        std::process::exit(1);
    }
    eprintln!(
        "  media injected {} torn writes, {} lost flushes, {} duplicated segments",
        fault_stats.torn_writes, fault_stats.lost_flushes, fault_stats.duplicated_segments
    );
    eprintln!(
        "  streamed crash-resume cycle finished in {:.1?}",
        t2.elapsed()
    );
    println!("{}", resumed_stream.render_health());
    println!(
        "storage-fault smoke OK: {} shards resumed + {} fresh, streamed report byte-identical",
        resumed_stream.health.shards_resumed, resumed_stream.health.shards_fresh
    );
}
