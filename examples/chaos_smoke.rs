//! Chaos smoke: a scripted crash-and-resume cycle under fault injection.
//!
//! ```sh
//! cargo run --release --example chaos_smoke            # default seed
//! cargo run --release --example chaos_smoke -- 7 4     # seed 7, kill after 4
//! ```
//!
//! Runs a tiny-scale study under the chaos fault schedule, kills it after
//! N committed apps, then resumes from the surviving journal bytes and
//! checks the resumed report is byte-identical to an uninterrupted run of
//! the same configuration. Exits nonzero on any divergence, so CI can use
//! it as a release-mode crash-safety gate.

use app_tls_pinning::core::{Study, StudyConfig, StudyOutcome};
use app_tls_pinning::netsim::faults::FaultConfig;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2022);
    let kill_after: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(6);

    let config = || {
        let mut cfg = StudyConfig::tiny(seed);
        cfg.faults = FaultConfig::chaos();
        cfg
    };

    // Phase 1: run under chaos faults, die after `kill_after` apps.
    eprintln!("phase 1: chaos study, killed after {kill_after} committed apps…");
    let t0 = Instant::now();
    let mut killed_cfg = config();
    killed_cfg.supervisor.kill_after_apps = Some(kill_after);
    let journal = killed_cfg.journal();
    let outcome = Study::new(killed_cfg)
        .run_with_journal(journal)
        .expect("fresh journal must match its own config");
    let StudyOutcome::Interrupted {
        journal,
        apps_committed,
    } = outcome
    else {
        eprintln!("error: kill_after_apps={kill_after} did not interrupt the run");
        std::process::exit(1);
    };
    eprintln!(
        "  killed with {apps_committed} apps committed ({} journal bytes, {:.1?})",
        journal.as_bytes().len(),
        t0.elapsed()
    );

    // Phase 2: only the journal bytes survive the "crash"; resume from them.
    eprintln!("phase 2: resuming from the journal…");
    let disk_image = journal.into_bytes();
    let t1 = Instant::now();
    let resumed = match Study::new(config()).resume(&disk_image) {
        Ok(StudyOutcome::Completed(r)) => *r,
        Ok(StudyOutcome::Interrupted { .. }) => {
            eprintln!("error: resume without a kill switch must complete");
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: resume rejected its own journal: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("  resume finished in {:.1?}", t1.elapsed());

    // Phase 3: the resumed report must be byte-identical to an
    // uninterrupted run of the same seed and fault schedule.
    eprintln!("phase 3: comparing against an uninterrupted run…");
    let uninterrupted = Study::new(config()).run();
    if resumed.render_all() != uninterrupted.render_all()
        || resumed.render_degraded() != uninterrupted.render_degraded()
    {
        eprintln!("error: resumed study diverged from the uninterrupted run");
        std::process::exit(1);
    }

    println!("{}", resumed.render_run_health());
    println!(
        "chaos smoke OK: {} resumed + {} fresh apps, report byte-identical",
        resumed.health.resumed_apps, resumed.health.fresh_apps
    );
}
