//! Hostile-input demo: measure a world seeded with an adversarial app
//! cohort and print the malformed-input resilience table.
//!
//! ```sh
//! cargo run --release --example hostile_inputs              # 8 hostile apps
//! cargo run --release --example hostile_inputs -- 16 1234   # 16 apps, seed 1234
//! ```
//!
//! Every hostile app (cycles, 50-deep chains, giant SAN lists, stacked
//! wildcards, garbage DER, fake-PEM NSC files) must surface as a
//! structured `MalformedInput` record — never a fabricated pinning
//! verdict, never a crash. Exits nonzero if any hostile app escaped
//! classification or a worker panicked.

use app_tls_pinning::core::{Study, StudyConfig};
use app_tls_pinning::netsim::faults::MeasurementError;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_hostile: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0xADE5);

    let mut cfg = StudyConfig::tiny(seed);
    cfg.world.adversarial_apps = n_hostile;
    let results = Study::new(cfg).run();

    let mut escaped = 0usize;
    for &i in &results.world.hostile_apps {
        match results.records[&i].error {
            Some(MeasurementError::MalformedInput { layer, reason }) => {
                let app = &results.world.apps[i];
                println!("  {} -> rejected at {layer} ({reason})", app.id);
            }
            other => {
                println!("  app {i} ESCAPED classification: {other:?}");
                escaped += 1;
            }
        }
    }
    println!();
    print!("{}", results.render_resilience());

    if escaped > 0 || results.health.panics_recovered > 0 {
        eprintln!(
            "FAIL: {escaped} hostile app(s) escaped, {} panic(s)",
            results.health.panics_recovered
        );
        std::process::exit(1);
    }
    println!("\nall {n_hostile} hostile apps rejected with structured errors; zero crashes");
}
