//! Cross-platform consistency analysis of the Common dataset (§5.1,
//! Figures 2–4): do developers pin the same domains on Android and iOS?
//!
//! ```sh
//! cargo run --release --example cross_platform -- [tiny|paper] [seed]
//! ```

use app_tls_pinning::analysis::consistency::{compare, ConsistencyClass};
use app_tls_pinning::core::{Study, StudyConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args.get(1).map(String::as_str).unwrap_or("tiny");
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(575);
    let config = match scale {
        "paper" => StudyConfig::paper_scale(seed),
        _ => StudyConfig::tiny(seed),
    };

    eprintln!("running {scale}-scale study (seed {seed})…");
    let results = Study::new(config).run();

    println!("{}", results.render_figure2());
    println!("{}", results.render_figure3());
    println!("{}", results.render_figure4());

    // Per-app detail for every common product where at least one platform
    // pins — the raw data behind the figures.
    println!("per-app cross-platform detail:");
    for (android, ios, name) in results.common_observations() {
        if android.pinned.is_empty() && ios.pinned.is_empty() {
            continue;
        }
        let rep = compare(&android, &ios);
        let class = match rep.class {
            ConsistencyClass::Consistent if rep.identical_pinned_sets => "consistent (identical)",
            ConsistencyClass::Consistent => "consistent",
            ConsistencyClass::Inconsistent => "INCONSISTENT",
            ConsistencyClass::Inconclusive => "inconclusive",
        };
        println!("  {name:<14} {class:<24} jaccard={:.2}", rep.jaccard_pinned);
        println!("    android pins: {:?}", android.pinned);
        println!("    ios pins:     {:?}", ios.pinned);
    }

    let s = results.figure2_summary();
    println!(
        "\nsummary: of {} pinning common apps, {} pin on both platforms; only {} have fully consistent pinning ({} identical) — \
         pinning policies diverge across platforms, as the paper found.",
        s.total_pinners(),
        s.pin_both,
        s.both_consistent,
        s.both_identical
    );
}
