//! The full study: regenerate every table and figure of the paper.
//!
//! ```sh
//! cargo run --release --example full_study              # paper scale
//! cargo run --example full_study -- tiny                # smoke scale
//! cargo run --release --example full_study -- paper 42  # custom seed
//! cargo run --example full_study -- chaos 7             # fault injection on
//! ```
//!
//! Paper scale generates two 4,000-app stores, draws the six datasets
//! (Common 575×2, Popular 1,000×2, Random 1,000×2), runs the complete
//! static + dynamic + circumvention pipeline on every unique app, and
//! prints Tables 1–9 and Figures 1–5 as measured.

use app_tls_pinning::core::{Study, StudyConfig};
use app_tls_pinning::netsim::faults::FaultConfig;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = args.get(1).map(String::as_str).unwrap_or("paper");
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2022);

    let config = match scale {
        "tiny" => StudyConfig::tiny(seed),
        "paper" => StudyConfig::paper_scale(seed),
        // Tiny world under the chaos fault schedule: exercises retries,
        // Unobserved exclusions, and the degraded-apps table end to end.
        "chaos" => {
            let mut cfg = StudyConfig::tiny(seed);
            cfg.faults = FaultConfig::chaos();
            cfg
        }
        other => {
            eprintln!("unknown scale {other:?}; use `tiny`, `paper`, or `chaos`");
            std::process::exit(2);
        }
    };

    eprintln!(
        "running {scale}-scale study (seed {seed}, {} threads)…",
        config.threads
    );
    let t0 = Instant::now();
    let results = Study::new(config).run();
    let elapsed = t0.elapsed();
    eprintln!(
        "pipeline finished in {:.1?}: {} unique apps analyzed ({:.1} apps/sec)\n",
        elapsed,
        results.records.len(),
        results.records.len() as f64 / elapsed.as_secs_f64().max(1e-9)
    );

    println!("{}", results.render_all());
    // Supervision telemetry goes to stderr so stdout stays exactly the
    // paper's tables and figures.
    eprintln!("{}", results.render_run_health());
}
