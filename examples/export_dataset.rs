//! Export the study's dataset — the reproduction of the paper's public
//! data release (https://github.com/NEU-SNS/app-tls-pinning).
//!
//! ```sh
//! cargo run --release --example export_dataset -- [tiny|paper] [seed] [outdir]
//! ```
//!
//! Writes, under `outdir` (default `./dataset-out`):
//!   * `table3.csv`, `table4.csv`, `table5.csv`, `table6.csv`,
//!     `table8.csv`, `table9.csv`, `figure5_android.csv`,
//!     `figure5_ios.csv` — machine-readable tables;
//!   * `apps.csv` — one row per analyzed app (id, platform, pins, counts);
//!   * `captures/<app>.simcap` — raw binary captures for the first few
//!     pinning apps (the pcap-equivalent artifacts).

use app_tls_pinning::analysis::dynamics::pipeline::{analyze_app, DynamicEnv};
use app_tls_pinning::app::platform::Platform;
use app_tls_pinning::core::{Study, StudyConfig};
use app_tls_pinning::netsim::simcap;
use app_tls_pinning::report::export;
use std::fs;
use std::path::Path;

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().collect();
    let scale = args.get(1).map(String::as_str).unwrap_or("tiny");
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2022);
    let outdir = args
        .get(3)
        .cloned()
        .unwrap_or_else(|| "dataset-out".to_string());
    let outdir = Path::new(&outdir);

    let config = match scale {
        "paper" => StudyConfig::paper_scale(seed),
        _ => StudyConfig::tiny(seed),
    };
    eprintln!("running {scale}-scale study (seed {seed})…");
    let results = Study::new(config).run();

    fs::create_dir_all(outdir.join("captures"))?;

    // --- tables ---
    fs::write(
        outdir.join("table3.csv"),
        export::table3_csv(&results.table3()),
    )?;
    fs::write(
        outdir.join("table4.csv"),
        export::categories_csv(Platform::Android, &results.category_rows(Platform::Android)),
    )?;
    fs::write(
        outdir.join("table5.csv"),
        export::categories_csv(Platform::Ios, &results.category_rows(Platform::Ios)),
    )?;
    fs::write(
        outdir.join("table6.csv"),
        export::table6_csv(&results.table6()),
    )?;
    fs::write(
        outdir.join("table8.csv"),
        export::table8_csv(&results.table8()),
    )?;
    fs::write(
        outdir.join("table9.csv"),
        export::table9_csv(&results.table9()),
    )?;
    for platform in Platform::BOTH {
        let name = format!("figure5_{}.csv", platform.name().to_lowercase());
        fs::write(
            outdir.join(name),
            export::destinations_csv(platform, &results.figure5_profiles(platform)),
        )?;
    }

    // --- per-app records ---
    let mut apps_csv = String::from(
        "app_id,platform,pins,pinned_destinations,used_destinations,static_certs,static_pins,nsc,weak_overall\n",
    );
    for rec in results.records.values() {
        apps_csv.push_str(&export::csv_line(&[
            rec.id.id.clone(),
            rec.id.platform.to_string(),
            rec.pins().to_string(),
            rec.pinned_destinations.join(";"),
            rec.used_destinations.len().to_string(),
            rec.static_findings.embedded_certs.len().to_string(),
            rec.static_findings.pin_strings.len().to_string(),
            rec.static_findings.nsc_declares_pins.to_string(),
            rec.weak_overall.to_string(),
        ]));
        apps_csv.push('\n');
    }
    fs::write(outdir.join("apps.csv"), apps_csv)?;

    // --- raw captures for a few pinning apps ---
    let env = DynamicEnv::new(
        &results.world.network,
        results.world.universe.aosp_oem.clone(),
        results.world.universe.ios.clone(),
        results.world.now,
        seed,
    );
    let mut exported = 0;
    for rec in results.records.values().filter(|r| r.pins()).take(8) {
        let app = &results.world.apps[rec.app_index];
        let dynres = analyze_app(&env, app);
        let file = outdir
            .join("captures")
            .join(format!("{}.simcap", rec.id.id.replace(['/', ':'], "_")));
        fs::write(&file, simcap::serialize(&dynres.mitm))?;
        // Verify what we wrote parses back.
        let back = simcap::deserialize(&fs::read(&file)?).expect("simcap roundtrip");
        assert_eq!(back.flows.len(), dynres.mitm.flows.len());
        exported += 1;
    }

    eprintln!(
        "dataset written to {}: 8 CSV tables, apps.csv ({} rows), {exported} capture files",
        outdir.display(),
        results.records.len()
    );
    Ok(())
}
