//! Single-app pinning audit — the `objection`/Frida-script workflow as one
//! command.
//!
//! ```sh
//! cargo run --example audit_app -- [seed] [store-rank] [android|ios]
//! ```
//!
//! Audits the app at the given store rank: static artifacts, NSC
//! configuration, per-destination dynamic verdicts, circumvention attempt,
//! and a tcpdump-style transcript of the pinned connections.

use app_tls_pinning::analysis::circumvent::circumvent_app;
use app_tls_pinning::analysis::dynamics::pipeline::{analyze_app, DynamicEnv};
use app_tls_pinning::analysis::statics::analyze_package;
use app_tls_pinning::app::platform::Platform;
use app_tls_pinning::store::config::WorldConfig;
use app_tls_pinning::store::world::World;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0xA0D17);
    let rank: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    let platform = match args.get(3).map(String::as_str) {
        Some("ios") => Platform::Ios,
        _ => Platform::Android,
    };

    let world = World::generate(WorldConfig::tiny(seed));
    let Some(app) = world.app_at_rank(platform, rank) else {
        eprintln!("no app at rank {rank} on {platform}");
        std::process::exit(1);
    };

    println!("=== audit: {} ===", app.id);
    println!(
        "name: {} | developer: {} | category: {:?} | rank: #{}",
        app.name, app.developer_org, app.category, app.popularity_rank
    );
    println!("bundled SDKs: {:?}", app.sdk_names);
    println!(
        "package: {} files, {} bytes, encrypted={}",
        app.package.files.len(),
        app.package.total_size(),
        app.package.encrypted
    );

    // --- static pass ---
    let key = (platform == Platform::Ios).then_some(world.config.ios_encryption_seed);
    let findings = analyze_package(&app.package, key);
    println!("\n[static] certificate material");
    if findings.embedded_certs.is_empty() && findings.pin_strings.is_empty() {
        println!("  (none found)");
    }
    for c in &findings.embedded_certs {
        println!(
            "  cert  {}  CN={}  ca={}",
            c.path, c.value.tbs.subject.common_name, c.value.tbs.is_ca
        );
    }
    for p in &findings.pin_strings {
        let ok = if p.value.parsed.is_some() {
            "valid"
        } else {
            "unparseable"
        };
        println!("  pin   {}  {}  ({ok})", p.path, p.value.raw);
    }
    println!(
        "  NSC: present={} declares-pins={} effective={}",
        findings.has_nsc, findings.nsc_declares_pins, findings.nsc_pins_effectively
    );

    // --- dynamic pass ---
    let env = DynamicEnv::new(
        &world.network,
        world.universe.aosp_oem.clone(),
        world.universe.ios.clone(),
        world.now,
        seed,
    );
    let result = analyze_app(&env, app);
    println!("\n[dynamic] per-destination verdicts (30s window, differential)");
    for v in &result.verdicts {
        println!(
            "  {:<36} {}",
            v.destination,
            if v.pinned {
                "PINNED".to_string()
            } else {
                format!("{:?}", v.excluded)
            }
        );
    }

    let pinned = result.pinned_destinations();
    if pinned.is_empty() {
        println!("\nverdict: app does not pin (dynamically).");
        return;
    }

    // --- transcripts of the pinned failures ---
    println!("\n[capture] MITM-run transcripts for pinned destinations");
    for flow in &result.mitm.flows {
        if flow
            .transcript
            .sni
            .as_deref()
            .is_some_and(|s| pinned.contains(&s))
        {
            print!("{}", flow.transcript.dump());
        }
    }

    // --- circumvention ---
    println!("[frida] attempting to disable pinning…");
    let circ = circumvent_app(&env, app, &pinned);
    for d in &circ.destinations {
        if d.succeeded {
            println!("  {} → OPENED; first request body:", d.destination);
            if let Some(body) = d.plaintexts.first() {
                println!("    {body}");
            }
        } else {
            println!("  {} → resisted (custom TLS stack?)", d.destination);
        }
    }
    println!(
        "\nverdict: app pins {} destination(s); circumvented {}/{}.",
        pinned.len(),
        circ.succeeded(),
        circ.attempted()
    );
}
