//! MITM lab: watch the record-level difference between an intercepted
//! unpinned connection and an intercepted pinned one.
//!
//! ```sh
//! cargo run --example mitm_lab
//! ```
//!
//! Builds a two-server network by hand (no world generator), configures a
//! pinned and an unpinned client, and dumps the resulting transcripts in
//! all four (pin × MITM) combinations — the observable basis of §4.2.2.

use app_tls_pinning::crypto::sig::KeyPair;
use app_tls_pinning::crypto::SplitMix64;
use app_tls_pinning::netsim::proxy::MitmProxy;
use app_tls_pinning::pki::pin::{Pin, PinSet, SpkiPin};
use app_tls_pinning::pki::store::RootStore;
use app_tls_pinning::pki::universe::{PkiUniverse, UniverseConfig};
use app_tls_pinning::pki::validate::RevocationList;
use app_tls_pinning::tls::verify::CertPolicy;
use app_tls_pinning::tls::{establish, ClientConfig, ServerEndpoint, TlsLibrary};

fn main() {
    let mut rng = SplitMix64::new(0x1ab);
    let mut universe = PkiUniverse::generate(&UniverseConfig::tiny(), &mut rng);
    let now = universe.now();

    // One genuine server.
    let key = KeyPair::generate(&mut rng);
    let genuine = universe.issue_server_chain(
        &["api.bank.example".to_string()],
        "Bank",
        &key,
        398,
        &mut rng,
    );

    // The proxy and the device trust store (factory + proxy CA, like the
    // paper's modified system image).
    let proxy = MitmProxy::new(&mut rng, now);
    let mut device_store = RootStore::new("device");
    for root in universe.aosp.iter() {
        device_store.add(root.clone());
    }
    device_store.add(proxy.ca_cert());
    let forged = proxy.forge_chain("api.bank.example", &genuine);

    // Two clients: one pinning the genuine root, one not.
    let unpinned = ClientConfig::modern(TlsLibrary::OkHttp);
    let mut pinned = ClientConfig::modern(TlsLibrary::OkHttp);
    pinned.policy = CertPolicy::pinned(PinSet::from_pins(vec![Pin::Spki(SpkiPin::sha256_of(
        genuine.top().expect("chain has a root"),
    ))]));

    let crl = RevocationList::empty();
    for (client_label, client) in [("unpinned app", &unpinned), ("pinned app", &pinned)] {
        for (path_label, chain) in [("direct", &genuine), ("through mitmproxy", &forged)] {
            println!("=== {client_label}, {path_label} ===");
            let server = ServerEndpoint::modern(chain);
            let mut out = establish(
                client,
                &server,
                "api.bank.example",
                now,
                &device_store,
                &crl,
            );
            match out.result {
                Ok(session) => {
                    session.send_client_data(&mut out.transcript, 420);
                    session.send_server_data(&mut out.transcript, 2048);
                    session.close(&mut out.transcript);
                    println!("handshake OK — application data flows");
                }
                Err(e) => println!("handshake FAILED: {e:?}"),
            }
            print!("{}", out.transcript.dump());
            println!();
        }
    }

    println!(
        "takeaway: the unpinned app accepts the forged chain (proxy CA is in the\n\
         device store), while the pinned app completes the handshake and then\n\
         aborts — exactly the differential signature the detector keys on."
    );
}
