//! Store evolution demo: run a seeded epoch plan incrementally.
//!
//! ```sh
//! cargo run --release --example store_evolution            # default seed
//! cargo run --release --example store_evolution -- 7 4     # seed 7, 4 epochs
//! ```
//!
//! Evolves a tiny world through N epochs with the incremental re-study
//! engine, printing the delta report (adoption trend, distrust breakage,
//! pin-rotation survival, CT drift, event mix) and the per-epoch
//! incremental-cost table. As a self-check it re-runs the final epoch
//! cold and exits nonzero if the reports are not byte-identical.

use app_tls_pinning::epoch::{EpochConfig, Evolution};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2022);
    let epochs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);

    let mut config = EpochConfig::tiny(seed);
    config.epochs = epochs;

    eprintln!("evolving store through {epochs} epochs (seed {seed})…");
    let t0 = Instant::now();
    let mut engine = Evolution::new(config.clone(), true);
    for k in 0..engine.epochs_total() {
        engine.next_epoch().expect("epoch run");
        let cost = engine.costs().last().expect("cost row");
        eprintln!(
            "  epoch {k}: replayed {} / reanalyzed {} ({} ms)",
            cost.replayed, cost.reanalyzed, cost.wall_ms
        );
    }
    eprintln!("incremental evolution took {:?}", t0.elapsed());

    println!("{}", engine.delta_report());
    println!("{}", engine.cost_report());

    // Self-check: a cold run of the same plan must render byte-identically.
    eprintln!("re-running cold for the byte-identity check…");
    let mut cold = Evolution::new(config, false);
    for _ in 0..cold.epochs_total() {
        cold.next_epoch().expect("cold epoch run");
    }
    if cold.full_report() != engine.full_report() {
        eprintln!("FAIL: incremental report diverged from the cold re-run");
        std::process::exit(1);
    }
    println!(
        "byte-identity OK: {} apps replayed across {} epochs",
        engine.total_replayed(),
        engine.epochs_total()
    );
}
