//! Quickstart: detect certificate pinning in one app, both ways.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Generates a miniature ecosystem, picks an app that pins, and shows the
//! two detection paths of the paper side by side: the static scan of its
//! package and the differential (MITM vs non-MITM) dynamic analysis.

use app_tls_pinning::analysis::dynamics::pipeline::{analyze_app, DynamicEnv};
use app_tls_pinning::analysis::statics::analyze_package;
use app_tls_pinning::app::platform::Platform;
use app_tls_pinning::store::config::WorldConfig;
use app_tls_pinning::store::world::World;

fn main() {
    println!("== app-tls-pinning quickstart ==\n");

    // 1. A small simulated ecosystem (stores, servers, PKI, apps).
    let world = World::generate(WorldConfig::tiny(0xC0FFEE));
    println!(
        "world: {} apps across two stores, {} reachable hostnames, {} CT-log entries\n",
        world.apps.len(),
        world.network.n_hostnames(),
        world.ctlog.len()
    );

    // 2. Pick an app that actually pins at run time (ground truth).
    let app = world
        .apps
        .iter()
        .find(|a| a.pins_at_runtime())
        .expect("the tiny world always contains pinning apps");
    println!(
        "app under test: {} ({}, {:?})",
        app.name, app.id, app.category
    );

    // 3. Static analysis: scan the package (decrypting first on iOS).
    let key = (app.id.platform == Platform::Ios).then_some(world.config.ios_encryption_seed);
    let findings = analyze_package(&app.package, key);
    println!("\n-- static analysis (§4.1) --");
    println!("  embedded certificates: {}", findings.embedded_certs.len());
    for c in findings.embedded_certs.iter().take(3) {
        println!("    {} (CN={})", c.path, c.value.tbs.subject.common_name);
    }
    println!("  pin strings:           {}", findings.pin_strings.len());
    for p in findings.pin_strings.iter().take(3) {
        println!("    {} in {}", p.value.raw, p.path);
    }
    println!("  NSC declares pins:     {}", findings.nsc_declares_pins);

    // 4. Dynamic analysis: run on a device with and without interception.
    let env = DynamicEnv::new(
        &world.network,
        world.universe.aosp_oem.clone(),
        world.universe.ios.clone(),
        world.now,
        world.config.seed,
    );
    let result = analyze_app(&env, app);
    println!("\n-- dynamic analysis (§4.2) --");
    for v in &result.verdicts {
        let status = if v.pinned {
            "PINNED"
        } else if v.excluded.is_some() {
            "excluded"
        } else {
            "not pinned"
        };
        println!(
            "  {:<34} used-baseline={:<5} all-failed-mitm={:<5} → {status}",
            v.destination, v.used_baseline, v.all_failed_mitm
        );
    }

    // 5. Compare with ground truth.
    println!(
        "\nground-truth pinned domains: {:?}",
        app.runtime_pinned_domains()
    );
    println!(
        "detected pinned domains:     {:?}",
        result.pinned_destinations()
    );
}
