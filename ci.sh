#!/usr/bin/env bash
# Offline CI gate for the pinning reproduction workspace.
#
# Everything runs with --offline: the workspace has zero external
# dependencies by design, so a network-less container must pass this
# script end to end. The chaos suite is invoked explicitly (in addition
# to the full test run) so a fault-injection regression fails loudly
# under its own name.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release --offline

echo "==> cargo test (workspace)"
cargo test -q --workspace --offline

echo "==> chaos suite (fault injection + degradation)"
cargo test -q --offline --test chaos

echo "==> ctlog suite (Merkle proofs, sharding, auditor, resolver)"
cargo test -q -p pinning-ctlog --offline

echo "==> chaos smoke (release-mode kill/resume cycle under faults + storage-fault streamed cycle)"
cargo run -q --release --offline --example chaos_smoke | tee /tmp/chaos_smoke.out
grep -qF "storage-fault smoke OK" /tmp/chaos_smoke.out || { echo "chaos smoke missing the storage-fault phase"; exit 1; }

echo "==> storage-fault matrix (durable-media fault plans x journal writers x kill points)"
cargo test -q --offline --test chaos fault_matrix

echo "==> bench smoke (cached-vs-uncached A/B; fails on report divergence)"
cargo bench -q -p pinning-bench --bench perf --offline -- smoke

echo "==> fuzz smoke (every decoder, mutation fuzz, fixed seed; fails on any panic)"
cargo bench -q -p pinning-bench --bench fuzz --offline -- smoke

echo "==> serve smoke (seeded overload: bounded queue, nonzero shed, same-seed determinism, offline-identical verdicts)"
cargo bench -q -p pinning-bench --bench serve --offline -- smoke

echo "==> epoch smoke (seeded 3-epoch evolution: incremental/cold byte-identity, nonzero replayed apps, speedup gate)"
cargo bench -q -p pinning-bench --bench epoch --offline -- smoke
for key in '"schema": "pinning-bench/epoch"' '"byte_identical": true' '"per_epoch"' '"speedup"'; do
  grep -qF "$key" BENCH_epoch.json || { echo "BENCH_epoch.json missing $key"; exit 1; }
done
if grep -qF '"replayed_total": 0' BENCH_epoch.json; then
  echo "BENCH_epoch.json: zero apps replayed"; exit 1
fi

echo "==> stream smoke (chunked streaming study: schedule byte-identity, kill-and-resume identity, scrub-overhead bound, flat-memory ceiling)"
cargo bench -q -p pinning-bench --bench stream --offline -- smoke
for key in '"schema": "pinning-bench/stream"' '"byte_identical": true' '"resume_identical": true' '"scrub_within_bound": true' '"rss_within_ceiling": true' '"apps_per_sec"' '"scrub_overhead_pct"'; do
  grep -qF "$key" BENCH_stream.json || { echo "BENCH_stream.json missing $key"; exit 1; }
done

echo "==> rustdoc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

echo "CI OK"
